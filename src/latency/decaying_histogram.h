// DecayingHistogram — an exponentially-bucketed histogram whose weights
// decay multiplicatively each tick, so percentile queries track the
// *recent* latency distribution instead of the whole run. The hedging
// policy reads its per-tenant p95 threshold from one of these: a tenant
// whose tail moved a minute ago should hedge against today's tail, not
// the run-cumulative one.
//
// Same bucketization as common/histogram.h (geometric, growth 1.3) but
// with double weights. All operations are deterministic: Add and Decay
// are called only from serial pipeline sections, in delivery order.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace abase {
namespace latency {

class DecayingHistogram {
 public:
  /// Bucket storage is allocated lazily on the first sample: tenants
  /// that never observe a latency (the common case at million-tenant
  /// scale) keep only the empty vectors.
  explicit DecayingHistogram(double max_value = 1e9, double decay = 0.9,
                             double growth = 1.3)
      : decay_(decay), growth_(growth), max_value_(max_value) {}

  void Add(double value, double weight = 1.0) {
    if (value < 0) value = 0;
    if (bounds_.empty()) BuildBuckets();
    weights_[BucketFor(value)] += weight;
    total_ += weight;
  }

  /// One decay step (call once per tick): every bucket's weight shrinks
  /// by the decay factor, so a sample's influence halves roughly every
  /// log(0.5)/log(decay) ticks.
  void Decay() {
    if (total_ <= 0) return;
    for (double& w : weights_) w *= decay_;
    total_ *= decay_;
    // Flush denormal-scale residue so an idle histogram settles to
    // exactly empty instead of decaying forever.
    if (total_ < 1e-9) Reset();
  }

  void Reset() {
    std::fill(weights_.begin(), weights_.end(), 0.0);
    total_ = 0;
  }

  double total_weight() const { return total_; }

  /// Upper bound of the bucket containing the p-th percentile of the
  /// current (decayed) weight mass; 0 when empty.
  double Percentile(double p) const {
    if (total_ <= 0) return 0;
    const double target = total_ * std::min(100.0, std::max(0.0, p)) / 100.0;
    double acc = 0;
    for (size_t i = 0; i < weights_.size(); i++) {
      acc += weights_[i];
      if (acc >= target) return bounds_[i];
    }
    return bounds_.back();
  }

 private:
  void BuildBuckets() {
    double bound = 1.0;
    bounds_.push_back(bound);
    while (bound < max_value_) {
      bound *= growth_;
      bounds_.push_back(bound);
    }
    weights_.assign(bounds_.size(), 0.0);
  }

  size_t BucketFor(double value) const {
    if (value <= bounds_.front()) return 0;
    if (value >= bounds_.back()) return bounds_.size() - 1;
    const size_t idx = static_cast<size_t>(
        std::ceil(std::log(value) / std::log(growth_)));
    return std::min(idx, bounds_.size() - 1);
  }

  double decay_;
  double growth_;
  double max_value_;
  std::vector<double> bounds_;
  std::vector<double> weights_;
  double total_ = 0;
};

}  // namespace latency
}  // namespace abase
