#include "latency/gray_detector.h"

#include <algorithm>

namespace abase {
namespace latency {

void GrayFailureDetector::ObserveTick(NodeId node,
                                      uint64_t latency_sum_micros,
                                      uint64_t count) {
  if (!options_.enabled || count == 0) return;
  NodeStat& st = nodes_[node];
  st.tick_sum += latency_sum_micros;
  st.tick_count += count;
}

std::vector<GrayFailureDetector::Transition> GrayFailureDetector::Evaluate() {
  std::vector<Transition> transitions;
  if (!options_.enabled || nodes_.empty()) return transitions;

  // Fold this tick's means into the EWMAs (node-id order).
  for (auto& [id, st] : nodes_) {
    if (st.tick_count >= options_.min_samples) {
      const double mean = static_cast<double>(st.tick_sum) /
                          static_cast<double>(st.tick_count);
      if (st.has_ewma) {
        st.ewma += options_.ewma_alpha * (mean - st.ewma);
      } else {
        st.ewma = mean;
        st.has_ewma = true;
      }
    }
    st.tick_sum = 0;
    st.tick_count = 0;
  }

  // Fleet median over every node with an EWMA. nth_element would be
  // cheaper but the fleet is small and full sort keeps ties exact.
  median_scratch_.clear();
  for (const auto& [id, st] : nodes_) {
    if (st.has_ewma) median_scratch_.push_back(st.ewma);
  }
  if (median_scratch_.empty()) return transitions;
  std::sort(median_scratch_.begin(), median_scratch_.end());
  fleet_median_ = median_scratch_[median_scratch_.size() / 2];
  if (fleet_median_ <= 0) return transitions;

  // Hysteresis streaks and state flips, node-id order.
  for (auto& [id, st] : nodes_) {
    if (!st.has_ewma) continue;
    if (!st.gray) {
      if (st.ewma > options_.slow_factor * fleet_median_) {
        if (++st.streak >= options_.consecutive_ticks) {
          st.gray = true;
          st.streak = 0;
          transitions.push_back(Transition{id, true});
        }
      } else {
        st.streak = 0;
      }
    } else {
      if (st.ewma < options_.recover_factor * fleet_median_) {
        if (++st.streak >= options_.consecutive_ticks) {
          st.gray = false;
          st.streak = 0;
          transitions.push_back(Transition{id, false});
        }
      } else {
        st.streak = 0;
      }
    }
  }
  return transitions;
}

}  // namespace latency
}  // namespace abase
