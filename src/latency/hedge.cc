#include "latency/hedge.h"

namespace abase {
namespace latency {

HedgeDecision EvaluateHedge(Micros threshold, Micros primary_vt,
                            bool alt_available, Micros alt_vt,
                            double alt_ru) {
  HedgeDecision d;
  d.effective_micros = primary_vt;
  if (threshold <= 0 || primary_vt <= threshold) return d;  // Never armed.
  if (!alt_available) {
    // Armed, but the alternate replica cannot serve (dead, demoted,
    // absent): the hedge is cancelled before launch. No second
    // execution, no extra RU — the client just waits out the primary.
    d.hedged = true;
    return d;
  }
  // The hedge launches the moment the threshold elapses; the alternate's
  // clock starts there.
  const Micros alt_total = threshold + alt_vt;
  d.hedged = true;
  d.cancelled = true;  // Whichever copy loses is cancelled...
  d.extra_ru = alt_ru;  // ...but already did (and charges for) its work.
  if (alt_total < primary_vt) {
    d.hedge_won = true;
    d.effective_micros = alt_total;
  }
  return d;
}

}  // namespace latency
}  // namespace abase
