#include "latency/service_time.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace abase {
namespace latency {

const char* DistKindName(DistKind kind) {
  switch (kind) {
    case DistKind::kFixed:
      return "fixed";
    case DistKind::kExponential:
      return "exponential";
    case DistKind::kLognormal:
      return "lognormal";
  }
  return "?";
}

ServiceTimeModel::ServiceTimeModel(const ServiceTimeOptions& options)
    : options_(options) {
  const double mean = std::max(1.0, options_.mean_micros);
  const double sigma = std::max(0.0, options_.sigma);
  lognormal_mu_ = std::log(mean) - 0.5 * sigma * sigma;
}

double ServiceTimeModel::Uniform(uint64_t seed, uint64_t stream,
                                 uint64_t draw) {
  // Counter-mode: one splitmix64 finalizer chain per draw. The 53 high
  // bits give a uniform double in [0, 1).
  const uint64_t h = MixSeed(MixSeed(seed, stream), draw);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

Micros ServiceTimeModel::Sample(uint64_t stream, uint64_t req_id) const {
  const double mean = std::max(1.0, options_.mean_micros);
  double micros = mean;
  switch (options_.dist) {
    case DistKind::kFixed:
      break;
    case DistKind::kExponential: {
      // Inverse CDF. 1-u is in (0, 1], so the log argument never hits 0.
      const double u = Uniform(options_.seed, stream, req_id * 2);
      micros = -mean * std::log1p(-u);
      break;
    }
    case DistKind::kLognormal: {
      // Box-Muller on two independent counter draws. u1 is flipped to
      // (0, 1] so log(u1) is finite.
      const double u1 = 1.0 - Uniform(options_.seed, stream, req_id * 2);
      const double u2 = Uniform(options_.seed, stream, req_id * 2 + 1);
      const double z =
          std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
      micros = std::exp(lognormal_mu_ + options_.sigma * z);
      break;
    }
  }
  // Floor at 1us; cap at 100x mean so a single astronomically unlucky
  // draw cannot dominate every percentile above it.
  micros = std::min(micros, 100.0 * mean);
  return static_cast<Micros>(std::max(1.0, micros));
}

}  // namespace latency
}  // namespace abase
