// Hedged (speculative) replica reads for the kEventual path.
//
// When a primary read's elapsed virtual time crosses the tenant's hedge
// threshold — the observed latency quantile from a decaying histogram —
// the proxy launches a second copy of the read at an alternate replica
// and takes whichever completes first, cancelling the loser. Both
// executions consume RU (the losing replica did the work before the
// cancel reached it), which is the cost the bench gate bounds at +10%.
//
// The hedge state machine is evaluated analytically at settlement
// (EvaluateHedge is a pure function — unit-testable without a cluster):
//
//   primary_vt <= threshold            -> no hedge, primary wins
//   primary_vt  > threshold, no alt    -> hedge cancelled before launch
//                                         (no extra RU, primary latency)
//   primary_vt  > threshold, alt alive -> effective = min(primary_vt,
//                                         threshold + alt_vt); the loser
//                                         is cancelled but still charged
#pragma once

#include <algorithm>

#include "common/clock.h"
#include "latency/decaying_histogram.h"

namespace abase {
namespace latency {

struct HedgePolicy {
  bool enabled = false;
  /// Latency quantile (percent) of the tenant's recent distribution that
  /// arms the hedge. 95 = hedge the slowest ~5% of reads.
  double quantile = 95.0;
  /// Threshold floor: never hedge before this much elapsed time, however
  /// tight the observed distribution (guards against hedging everything
  /// when the tenant is uniformly fast).
  Micros min_threshold_micros = 200;
  /// Observed-latency mass required before the first hedge fires: an
  /// unwarmed histogram gives a garbage quantile.
  double min_observations = 64;
  /// Per-tick decay of the observation histogram (see DecayingHistogram).
  double decay = 0.95;
};

/// Outcome of one hedge evaluation (see the state machine above).
struct HedgeDecision {
  bool hedged = false;     ///< A second read was launched.
  bool hedge_won = false;  ///< The alternate replica completed first.
  /// The launched loser was cancelled (always true once both copies ran;
  /// false when the hedge was cancelled before launch — dead alternate).
  bool cancelled = false;
  Micros effective_micros = 0;  ///< Client-visible virtual time.
  double extra_ru = 0;          ///< RU charged beyond the primary read.
};

/// Pure hedge evaluation. `threshold` <= 0 disables (unwarmed histogram).
/// `alt_vt` is the alternate's full virtual time from hedge launch
/// (service + hop); `alt_ru` what its execution would charge.
HedgeDecision EvaluateHedge(Micros threshold, Micros primary_vt,
                            bool alt_available, Micros alt_vt, double alt_ru);

/// Per-tenant hedging state: the decaying observation histogram and the
/// threshold frozen at the last tick boundary. Settlement evaluates every
/// hedge in a tick against the *frozen* threshold — observations landing
/// earlier in the same tick must not move the bar mid-tick, or delivery
/// order would feed back into itself.
class Hedger {
 public:
  explicit Hedger(HedgePolicy policy = {})
      : policy_(policy), observed_(1e9, policy.decay) {}

  const HedgePolicy& policy() const { return policy_; }

  /// Records one settled read latency (serial sections only).
  void Observe(Micros latency) {
    observed_.Add(static_cast<double>(latency));
  }

  /// Tick boundary: refreeze the threshold from the decayed histogram.
  void EndTick() {
    observed_.Decay();
    if (!policy_.enabled ||
        observed_.total_weight() < policy_.min_observations) {
      threshold_ = 0;
      return;
    }
    threshold_ = std::max(
        policy_.min_threshold_micros,
        static_cast<Micros>(observed_.Percentile(policy_.quantile)));
  }

  /// The hedge-arming threshold for the current tick (0 = hedging off).
  Micros threshold() const { return threshold_; }

  const DecayingHistogram& observed() const { return observed_; }

 private:
  HedgePolicy policy_;
  DecayingHistogram observed_;
  Micros threshold_ = 0;
};

}  // namespace latency
}  // namespace abase
