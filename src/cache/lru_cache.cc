#include "cache/lru_cache.h"

namespace abase {
namespace cache {

LruCache::LruCache(uint64_t capacity_bytes) : capacity_(capacity_bytes) {}

bool LruCache::Put(const std::string& key, std::string value,
                   uint64_t charge) {
  if (charge > capacity_) return false;
  auto it = map_.find(key);
  if (it != map_.end()) {
    used_ -= it->second->charge;
    lru_.erase(it->second);
    map_.erase(it);
  }
  EvictUntilFits(charge);
  lru_.push_front(Entry{key, std::move(value), charge});
  map_[key] = lru_.begin();
  used_ += charge;
  stats_.inserts++;
  return true;
}

std::optional<std::string> LruCache::Get(const std::string& key) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    stats_.misses++;
    return std::nullopt;
  }
  stats_.hits++;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->value;
}

bool LruCache::Erase(const std::string& key) {
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  used_ -= it->second->charge;
  lru_.erase(it->second);
  map_.erase(it);
  return true;
}

bool LruCache::Contains(const std::string& key) const {
  return map_.count(key) > 0;
}

void LruCache::Clear() {
  lru_.clear();
  map_.clear();
  used_ = 0;
}

void LruCache::EvictUntilFits(uint64_t incoming) {
  while (used_ + incoming > capacity_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    used_ -= victim.charge;
    map_.erase(victim.key);
    lru_.pop_back();
    stats_.evictions++;
  }
}

}  // namespace cache
}  // namespace abase
