#include "cache/sa_lru.h"

#include <algorithm>
#include <cassert>

namespace abase {
namespace cache {

SaLruCache::SaLruCache(SaLruOptions options, const Clock* clock)
    : options_(options), clock_(clock) {
  assert(options_.num_classes >= 1);
  classes_.resize(static_cast<size_t>(options_.num_classes));
}

int SaLruCache::ClassFor(uint64_t charge) const {
  uint64_t bound = options_.min_class_bytes;
  for (int c = 0; c < options_.num_classes - 1; c++) {
    if (charge <= bound) return c;
    bound *= 2;
  }
  return options_.num_classes - 1;
}

bool SaLruCache::Put(const std::string& key, std::string_view value,
                     uint64_t charge, Micros expire_at) {
  return PutHashed(HashString(key), key, value, charge, expire_at);
}

bool SaLruCache::PutHashed(uint64_t h, const std::string& key,
                           std::string_view value, uint64_t charge,
                           Micros expire_at) {
  if (charge > options_.capacity_bytes) return false;
  // Same key or a hash-collided victim: either way the slot's current
  // entry goes, keeping the index bijective with the class lists. The
  // detached node is parked in spare_ — out of every class list, so it
  // can't be picked as an eviction victim — and reused below with its
  // string capacity intact.
  if (auto* slot = map_.Find(h)) {
    auto old = *slot;
    SizeClass& osc = classes_[static_cast<size_t>(old->size_class)];
    osc.bytes -= old->charge;
    used_ -= old->charge;
    spare_.splice(spare_.begin(), osc.lru, old);
    map_.Erase(h);
  }
  EvictUntilFits(charge);
  int cls = ClassFor(charge);
  SizeClass& sc = classes_[static_cast<size_t>(cls)];
  if (!spare_.empty()) {
    sc.lru.splice(sc.lru.begin(), spare_, spare_.begin());
    Entry& e = sc.lru.front();
    e.key = key;
    e.value.assign(value.data(), value.size());
    e.charge = charge;
    e.size_class = cls;
    e.expire_at = expire_at;
  } else {
    sc.lru.push_front(Entry{key, std::string(value), charge, cls, expire_at});
  }
  map_.Insert(h, sc.lru.begin());
  sc.bytes += charge;
  used_ += charge;
  stats_.inserts++;
  return true;
}

std::optional<std::string> SaLruCache::Get(const std::string& key) {
  Micros ignored;
  return GetWithExpiry(key, &ignored);
}

std::optional<std::string> SaLruCache::GetWithExpiry(const std::string& key,
                                                     Micros* expire_at) {
  const std::string* v = GetRef(key, expire_at);
  if (v == nullptr) return std::nullopt;
  return *v;
}

const std::string* SaLruCache::GetRef(const std::string& key,
                                      Micros* expire_at) {
  return GetRefHashed(HashString(key), key, expire_at);
}

const std::string* SaLruCache::GetRefHashed(uint64_t h,
                                            const std::string& key,
                                            Micros* expire_at) {
  *expire_at = 0;
  auto* slot = map_.Find(h);
  if (slot == nullptr || (*slot)->key != key) {
    stats_.misses++;
    return nullptr;
  }
  auto it = *slot;
  if (it->expire_at != 0 && clock_ != nullptr &&
      clock_->NowMicros() >= it->expire_at) {
    stats_.expired++;
    stats_.misses++;
    EraseHashed(h, key);
    return nullptr;
  }
  stats_.hits++;
  *expire_at = it->expire_at;
  SizeClass& sc = classes_[static_cast<size_t>(it->size_class)];
  sc.recent_hits += 1.0;
  sc.lru.splice(sc.lru.begin(), sc.lru, it);
  return &it->value;
}

bool SaLruCache::Erase(const std::string& key) {
  return EraseHashed(HashString(key), key);
}

bool SaLruCache::EraseHashed(uint64_t h, const std::string& key) {
  auto* slot = map_.Find(h);
  if (slot == nullptr || (*slot)->key != key) return false;
  auto it = *slot;
  SizeClass& sc = classes_[static_cast<size_t>(it->size_class)];
  sc.bytes -= it->charge;
  used_ -= it->charge;
  sc.lru.erase(it);
  map_.Erase(h);
  return true;
}

void SaLruCache::Clear() {
  map_.Clear();
  for (SizeClass& sc : classes_) {
    sc.lru.clear();
    sc.bytes = 0;
    sc.recent_hits = 0;
  }
  used_ = 0;
}

bool SaLruCache::Contains(const std::string& key) const {
  const auto* slot = map_.Find(HashString(key));
  return slot != nullptr && (*slot)->key == key;
}

int SaLruCache::VictimClass() const {
  // Lowest recent-hit density (hits per byte) among non-empty classes.
  // Ties break toward the *largest* size class: with equal density, evicting
  // big items frees more room per displaced hit.
  int victim = -1;
  double best_density = 0;
  for (int c = options_.num_classes - 1; c >= 0; c--) {
    const SizeClass& sc = classes_[static_cast<size_t>(c)];
    if (sc.bytes == 0) continue;
    double density = sc.recent_hits / static_cast<double>(sc.bytes);
    if (victim < 0 || density < best_density) {
      victim = c;
      best_density = density;
    }
  }
  return victim;
}

void SaLruCache::EvictUntilFits(uint64_t incoming) {
  while (used_ + incoming > options_.capacity_bytes) {
    int victim_class = VictimClass();
    if (victim_class < 0) break;  // Cache empty.
    SizeClass& sc = classes_[static_cast<size_t>(victim_class)];
    const Entry& victim = sc.lru.back();
    used_ -= victim.charge;
    sc.bytes -= victim.charge;
    map_.Erase(HashString(victim.key));
    sc.lru.pop_back();
    stats_.evictions++;
    DecayHits();
  }
}

void SaLruCache::DecayHits() {
  for (SizeClass& sc : classes_) sc.recent_hits *= options_.hit_decay;
}

std::vector<uint64_t> SaLruCache::ClassBytes() const {
  std::vector<uint64_t> out;
  out.reserve(classes_.size());
  for (const SizeClass& sc : classes_) out.push_back(sc.bytes);
  return out;
}

std::vector<double> SaLruCache::ClassDensity() const {
  std::vector<double> out;
  out.reserve(classes_.size());
  for (const SizeClass& sc : classes_) {
    out.push_back(sc.bytes == 0
                      ? 0.0
                      : sc.recent_hits / static_cast<double>(sc.bytes));
  }
  return out;
}

}  // namespace cache
}  // namespace abase
