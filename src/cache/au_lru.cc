#include "cache/au_lru.h"

#include <cassert>

namespace abase {
namespace cache {

AuLruCache::AuLruCache(AuLruOptions options, const Clock* clock)
    : options_(options), clock_(clock) {
  assert(clock_ != nullptr);
}

bool AuLruCache::Put(const std::string& key, std::string value,
                     uint64_t charge, Micros ttl) {
  if (charge > options_.capacity_bytes) return false;
  if (ttl <= 0) ttl = options_.default_ttl;
  const uint64_t h = HashString(key);
  // Same key or a hash-collided victim: either way the slot's current
  // entry goes, keeping the index bijective with the list.
  if (auto* slot = map_.Find(h)) RemoveEntry(*slot);
  EvictUntilFits(charge);
  lru_.push_front(Entry{key, std::move(value), charge,
                        clock_->NowMicros() + ttl, /*hits_this_period=*/0,
                        /*refresh_flagged=*/false});
  map_.Insert(h, lru_.begin());
  used_ += charge;
  stats_.inserts++;
  return true;
}

AuLookup AuLruCache::Get(const std::string& key) {
  AuLookup out;
  auto* slot = map_.Find(HashString(key));
  if (slot == nullptr || (*slot)->key != key) {
    stats_.misses++;
    return out;
  }
  Entry& e = **slot;
  const Micros now = clock_->NowMicros();
  if (now >= e.expire_at) {
    // Lazily expire: a passive LRU would now forward this (possibly hot)
    // key to the DataNode — exactly the spike AU-LRU avoids via refresh.
    stats_.expired++;
    stats_.misses++;
    RemoveEntry(*slot);
    return out;
  }
  out.hit = true;
  out.value = &e.value;
  stats_.hits++;
  e.hits_this_period++;
  if (!e.refresh_flagged && e.hits_this_period >= options_.refresh_min_hits &&
      e.expire_at - now <= options_.refresh_window) {
    e.refresh_flagged = true;
    out.needs_refresh = true;
    refresh_queue_.push_back(key);
    refresh_requests_++;
  }
  lru_.splice(lru_.begin(), lru_, *slot);
  return out;
}

bool AuLruCache::Erase(const std::string& key) {
  return EraseHashed(HashString(key), key);
}

bool AuLruCache::EraseHashed(uint64_t hash, const std::string& key) {
  auto* slot = map_.Find(hash);
  if (slot == nullptr || (*slot)->key != key) return false;
  RemoveEntry(*slot);
  return true;
}

bool AuLruCache::Contains(const std::string& key) const {
  const auto* slot = map_.Find(HashString(key));
  return slot != nullptr && (*slot)->key == key;
}

std::vector<std::string> AuLruCache::TakeRefreshQueue() {
  std::vector<std::string> out;
  out.swap(refresh_queue_);
  return out;
}

void AuLruCache::EvictUntilFits(uint64_t incoming) {
  while (used_ + incoming > options_.capacity_bytes && !lru_.empty()) {
    auto victim = std::prev(lru_.end());
    stats_.evictions++;
    RemoveEntry(victim);
  }
}

void AuLruCache::RemoveEntry(std::list<Entry>::iterator it) {
  used_ -= it->charge;
  map_.Erase(HashString(it->key));
  lru_.erase(it);
}

}  // namespace cache
}  // namespace abase
