#include "cache/au_lru.h"

#include <cassert>

namespace abase {
namespace cache {

AuLruCache::AuLruCache(AuLruOptions options, const Clock* clock)
    : options_(options), clock_(clock) {
  assert(clock_ != nullptr);
}

bool AuLruCache::Put(const std::string& key, std::string value,
                     uint64_t charge, Micros ttl) {
  if (charge > options_.capacity_bytes) return false;
  if (ttl <= 0) ttl = options_.default_ttl;
  auto it = map_.find(key);
  if (it != map_.end()) RemoveEntry(it->second);
  EvictUntilFits(charge);
  lru_.push_front(Entry{key, std::move(value), charge,
                        clock_->NowMicros() + ttl, /*hits_this_period=*/0,
                        /*refresh_flagged=*/false});
  map_[key] = lru_.begin();
  used_ += charge;
  stats_.inserts++;
  return true;
}

AuLookup AuLruCache::Get(const std::string& key) {
  AuLookup out;
  auto it = map_.find(key);
  if (it == map_.end()) {
    stats_.misses++;
    return out;
  }
  Entry& e = *it->second;
  const Micros now = clock_->NowMicros();
  if (now >= e.expire_at) {
    // Lazily expire: a passive LRU would now forward this (possibly hot)
    // key to the DataNode — exactly the spike AU-LRU avoids via refresh.
    stats_.expired++;
    stats_.misses++;
    RemoveEntry(it->second);
    return out;
  }
  out.hit = true;
  out.value = e.value;
  stats_.hits++;
  e.hits_this_period++;
  if (!e.refresh_flagged && e.hits_this_period >= options_.refresh_min_hits &&
      e.expire_at - now <= options_.refresh_window) {
    e.refresh_flagged = true;
    out.needs_refresh = true;
    refresh_queue_.push_back(key);
    refresh_requests_++;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  return out;
}

bool AuLruCache::Erase(const std::string& key) {
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  RemoveEntry(it->second);
  return true;
}

bool AuLruCache::Contains(const std::string& key) const {
  return map_.count(key) > 0;
}

std::vector<std::string> AuLruCache::TakeRefreshQueue() {
  std::vector<std::string> out;
  out.swap(refresh_queue_);
  return out;
}

void AuLruCache::EvictUntilFits(uint64_t incoming) {
  while (used_ + incoming > options_.capacity_bytes && !lru_.empty()) {
    auto victim = std::prev(lru_.end());
    stats_.evictions++;
    RemoveEntry(victim);
  }
}

void AuLruCache::RemoveEntry(std::list<Entry>::iterator it) {
  used_ -= it->charge;
  map_.erase(it->key);
  lru_.erase(it);
}

}  // namespace cache
}  // namespace abase
