// Prefix-tree proxy content store — the range-aware successor of the
// flat AU-LRU cache.
//
// The store is a hybrid of two indexes sharing one LRU and one byte
// budget. Point entries (GET payloads) live in a flat hash index keyed
// by HashString(key) — O(1) probes on the per-request hot path, fed by
// the key hash the request already carries. Cached scan results live
// in a compressed radix tree at the node of their *prefix*, keyed by
// the scan limit. Organizing scans by prefix buys the two operations a
// flat cache cannot do better than O(entries) or a full flush:
//
//  * Covering-scan invalidation: a write to key K must drop every
//    cached scan whose range contains K. Prefix-shaped scans covering K
//    are exactly the scan payloads on the root→K path — O(|K|) node
//    visits, skipped entirely when no scans are cached (subtree scan
//    counters gate the walk).
//  * InvalidatePrefix(P): split cutover, moved-key purges and
//    migrations invalidate a whole key prefix in O(subtree) — detach
//    one subtree instead of sweeping every cached entry or flushing.
//
// Contract compatibility: the point-entry API reproduces the AU-LRU
// cache contract exactly — lazy TTL expiry on Get, active-update
// refresh flagging (once per TTL period for entries with at least
// refresh_min_hits hits inside the refresh window), Put resetting the
// refresh bookkeeping, and strict global-LRU eviction. A point-only
// workload observes bit-identical hits, misses, refresh requests and
// eviction order to cache::AuLruCache, which keeps every golden digest
// and proxy-cache bench stable across the swap.
//
// Capacity accounting is SA-LRU-style: every payload is charged to a
// power-of-two size class that tracks resident bytes and a decayed hit
// count, so operators can read per-class hit density (the SA-LRU victim
// signal) off a running proxy. Eviction itself stays strict global LRU
// — see above.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cache/au_lru.h"
#include "cache/cache_stats.h"
#include "common/clock.h"
#include "common/flat_map.h"
#include "common/types.h"

namespace abase {
namespace cache {

/// Tree-specific counters, on top of the shared CacheStats (which the
/// store keeps with AU-LRU-identical semantics across point and scan
/// lookups alike).
struct PrefixTreeStats {
  uint64_t scan_hits = 0;
  uint64_t scan_misses = 0;
  uint64_t scan_inserts = 0;
  /// Cached scans dropped because a write landed inside their range.
  uint64_t scans_dropped_by_write = 0;
  /// InvalidatePrefix / InvalidateScans calls.
  uint64_t prefix_invalidations = 0;
  /// Payloads removed by prefix invalidation (not counted as evictions).
  uint64_t invalidated_payloads = 0;
};

/// Proxy content store over a compressed radix tree. Not thread-safe;
/// one instance per proxy, driven from the pipeline's serial sections.
class PrefixTreeStore {
 public:
  /// Reuses the AU-LRU option block: capacity, default TTL and the
  /// active-update refresh knobs keep their exact meaning.
  PrefixTreeStore(AuLruOptions options, const Clock* clock);
  ~PrefixTreeStore();

  PrefixTreeStore(const PrefixTreeStore&) = delete;
  PrefixTreeStore& operator=(const PrefixTreeStore&) = delete;

  // -- Point entries (AU-LRU contract) --------------------------------------

  /// Inserts/overwrites the point entry for `key`. ttl <= 0 means the
  /// configured default. Returns false if `charge` alone exceeds
  /// capacity. Overwriting resets the refresh bookkeeping and reuses
  /// the resident payload's buffers (the value is copied in).
  bool Put(const std::string& key, std::string_view value, uint64_t charge,
           Micros ttl = 0);

  /// Point lookup. Expired entries are erased and reported as misses.
  /// A hit near expiry on a sufficiently hot entry flags one background
  /// refresh per TTL period (AU-LRU active update).
  AuLookup Get(const std::string& key);

  // Hashed point entry points: identical semantics with a
  // caller-computed HashString(key). The request hot path carries the
  // key hash with the request (computed once at generation), so point
  // probes and write invalidations go through the flat hash index —
  // O(1) — instead of walking the radix tree byte by byte. The hash
  // MUST equal HashString(key); collisions are chained and resolved by
  // full-key compare, so behavior is exact, not probabilistic.

  bool PutHashed(uint64_t hash, const std::string& key,
                 std::string_view value, uint64_t charge, Micros ttl = 0);
  AuLookup GetHashed(uint64_t hash, const std::string& key);

  bool Erase(const std::string& key);

  /// Erase with a caller-computed HashString(key): the point entry is
  /// located through the hash index. Also drops every cached scan whose
  /// prefix covers `key` — a write inside a cached range makes that
  /// range stale (covering-scan invalidation); the covering walk is
  /// skipped entirely when no scans are cached (subtree counters).
  bool EraseHashed(uint64_t hash, const std::string& key);

  bool Contains(const std::string& key) const;

  /// Keys flagged for active refresh since the last call, in flag
  /// order. Only point entries are flagged: a scan prefix is not a
  /// fetchable key, so scan payloads simply expire.
  std::vector<std::string> TakeRefreshQueue();

  // -- Scan results ---------------------------------------------------------

  /// Caches the framed payload (common/scan_codec.h) of a completed
  /// prefix scan, keyed by (prefix, limit). Same TTL semantics as Put.
  bool PutScan(const std::string& prefix, uint32_t limit,
               std::string payload, uint64_t charge, Micros ttl = 0);

  /// Looks up a cached scan result for exactly (prefix, limit).
  /// Expired payloads are erased and reported as misses. Never flags a
  /// refresh.
  AuLookup GetScan(const std::string& prefix, uint32_t limit);

  // -- Prefix invalidation --------------------------------------------------

  /// Drops every payload — point and scan — under `prefix`, plus any
  /// scan payload on an ancestor node whose range covers the prefix.
  /// Scans cost O(affected subtree); points cost O(point entries), a
  /// sweep of the flat index (this is the rare cutover path — the
  /// common per-request operations stay O(1)). Returns payloads
  /// dropped.
  size_t InvalidatePrefix(const std::string& prefix);

  /// Drops every cached scan payload, keeping point entries. Walks only
  /// scan-bearing branches (subtree counters), so a store with no
  /// cached scans pays O(1). The split-cutover invalidation mode: a
  /// partition split changes the fan-out set scans were merged across,
  /// but moves no values, so point entries stay valid.
  size_t InvalidateScans();

  /// Drops everything (the conservative full-flush cutover mode).
  void Clear();

  // -- Introspection (AuLruCache-compatible surface) ------------------------

  uint64_t used_bytes() const { return used_; }
  uint64_t capacity_bytes() const { return options_.capacity_bytes; }
  size_t entry_count() const { return lru_.size(); }
  const CacheStats& stats() const { return stats_; }
  uint64_t refresh_requests() const { return refresh_requests_; }

  // -- Tree / size-class diagnostics ----------------------------------------

  const PrefixTreeStats& tree_stats() const { return tree_stats_; }
  /// Nodes in the scan tree (0 for point-only workloads).
  size_t node_count() const { return node_count_; }
  size_t cached_scans() const { return cached_scans_; }

  static constexpr int kNumClasses = 8;
  static constexpr uint64_t kMinClassBytes = 256;
  uint64_t ClassBytes(int c) const { return classes_[c].bytes; }
  /// Decayed hits per resident byte — the SA-LRU victim signal.
  double ClassDensity(int c) const;

 private:
  struct Node;
  struct Payload;

  static int ClassFor(uint64_t charge);

  /// Exact-path node for `key`, or null.
  const Node* FindExact(const std::string& key) const;
  /// Finds or creates (splitting edges as needed) the node for `path`.
  Node* InsertPath(const std::string& path);

  /// Point payload for `key` via the hash index (chained on collision,
  /// resolved by full-key compare), or null.
  Payload* FindPoint(uint64_t hash, const std::string& key) const;
  void IndexPoint(uint64_t hash, Payload* p);
  void UnindexPoint(Payload* p);
  /// Destroys every point payload and empties the index (Clear/dtor).
  void DeleteAllPoints();

  void TouchLru(Payload* p);
  void InsertLru(Payload* p);
  /// Detaches `p` from the LRU, size-class and subtree accounting and
  /// destroys it; prunes the now-possibly-empty node chain.
  void RemovePayload(Payload* p, bool count_as_invalidation);
  void EvictUntilFits(uint64_t incoming);
  /// Removes payload-less leaf nodes and merges payload-less
  /// single-child nodes upward from `n`.
  void PruneFrom(Node* n);
  /// Adds `delta` to the subtree scan counters on `n` and its ancestors.
  void BumpSubtreeScans(Node* n, int delta);
  /// Collects every scan payload in `n`'s subtree (subtree counters
  /// skip scan-free branches). Collected pointers stay valid while
  /// their siblings are removed: pruning only destroys payload-less
  /// nodes.
  void CollectSubtree(Node* n, std::vector<Payload*>& out) const;

  AuLruOptions options_;
  const Clock* clock_;
  /// Scan tree, lazily allocated on the first scan insert. Point-only
  /// workloads never touch it.
  std::unique_ptr<Node> root_;
  /// Home of every point payload: HashString(key) → head of a (nearly
  /// always length-1) collision chain threaded through
  /// Payload::hash_next. Chains make the index exact — a probe miss is
  /// an authoritative miss, never a fallback — so point behavior is
  /// identical to the tree-resident layout, just O(1).
  FlatMap64<Payload*> point_index_;
  std::list<Payload*> lru_;  ///< Front = most recently used.
  uint64_t used_ = 0;
  size_t node_count_ = 0;
  size_t cached_scans_ = 0;
  uint64_t refresh_requests_ = 0;
  std::vector<std::string> refresh_queue_;
  CacheStats stats_;
  PrefixTreeStats tree_stats_;

  struct SizeClass {
    uint64_t bytes = 0;
    double recent_hits = 0;  ///< Decayed by kHitDecay on every insert.
  };
  static constexpr double kHitDecay = 0.98;
  SizeClass classes_[kNumClasses];
};

}  // namespace cache
}  // namespace abase
