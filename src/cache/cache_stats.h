// Shared cache counters reported by every cache implementation.
#pragma once

#include <cstdint>

namespace abase {
namespace cache {

/// Monotonic counters; diff across a window for rates.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;
  uint64_t expired = 0;  ///< Entries dropped because their TTL elapsed.

  uint64_t lookups() const { return hits + misses; }

  /// Hit ratio in [0, 1]; 0 when no lookups have happened.
  double HitRatio() const {
    uint64_t n = lookups();
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
};

}  // namespace cache
}  // namespace abase
