#include "cache/prefix_tree_store.h"

#include <cassert>
#include <utility>

namespace abase {
namespace cache {

/// One cached payload. Scan results live at their prefix's tree node
/// (owned by the node); point entries live only in the flat hash index
/// (owned by the store, deleted in RemovePayload/DeleteAllPoints). The
/// LRU and size-class structures hold raw pointers to both kinds.
struct PrefixTreeStore::Payload {
  Node* node = nullptr;  ///< Scan payloads only; null for points.
  bool is_scan = false;
  uint32_t limit = 0;  ///< Scan payloads: the cached scan's limit.
  std::string value;
  uint64_t charge = 0;
  Micros expire_at = 0;
  uint32_t hits_this_period = 0;
  bool refresh_flagged = false;
  int size_class = 0;
  std::list<Payload*>::iterator lru_it;
  // Point payloads only: hash-index membership. `key` backs the
  // collision check and prefix invalidation; `hash_next` chains
  // same-hash payloads.
  std::string key;
  uint64_t key_hash = 0;
  Payload* hash_next = nullptr;
};

/// Compressed radix-tree node. `edge` is the label on the edge from the
/// parent; a node's path is the concatenation of edges from the root.
/// The tree holds only range-addressable state — cached scan results —
/// so the hot point workload never grows or walks it.
struct PrefixTreeStore::Node {
  std::string edge;
  Node* parent = nullptr;
  std::map<unsigned char, std::unique_ptr<Node>> children;
  std::vector<std::unique_ptr<Payload>> scans;  ///< By scan limit.
  /// Scan payloads in this subtree (self included) — gates the
  /// covering-scan walk and scan invalidation.
  uint32_t subtree_scans = 0;
};

PrefixTreeStore::PrefixTreeStore(AuLruOptions options, const Clock* clock)
    : options_(options), clock_(clock) {
  assert(clock_ != nullptr);
}

PrefixTreeStore::~PrefixTreeStore() { DeleteAllPoints(); }

void PrefixTreeStore::DeleteAllPoints() {
  point_index_.ForEach([](uint64_t, Payload*& head) {
    for (Payload* p = head; p != nullptr;) {
      Payload* next = p->hash_next;
      delete p;
      p = next;
    }
  });
  point_index_.Clear();
}

int PrefixTreeStore::ClassFor(uint64_t charge) {
  int c = 0;
  uint64_t limit = kMinClassBytes;
  while (c < kNumClasses - 1 && charge > limit) {
    limit <<= 1;
    c++;
  }
  return c;
}

double PrefixTreeStore::ClassDensity(int c) const {
  const SizeClass& sc = classes_[c];
  return sc.bytes == 0 ? 0.0
                       : sc.recent_hits / static_cast<double>(sc.bytes);
}

const PrefixTreeStore::Node* PrefixTreeStore::FindExact(
    const std::string& key) const {
  const Node* n = root_.get();
  if (n == nullptr) return nullptr;
  size_t i = 0;
  while (i < key.size()) {
    auto it = n->children.find(static_cast<unsigned char>(key[i]));
    if (it == n->children.end()) return nullptr;
    const Node* c = it->second.get();
    const std::string& e = c->edge;
    if (i + e.size() > key.size() || key.compare(i, e.size(), e) != 0) {
      return nullptr;
    }
    i += e.size();
    n = c;
  }
  return n;
}

PrefixTreeStore::Node* PrefixTreeStore::InsertPath(const std::string& path) {
  if (!root_) {
    root_ = std::make_unique<Node>();
    node_count_ = 1;
  }
  Node* n = root_.get();
  size_t i = 0;
  while (i < path.size()) {
    auto it = n->children.find(static_cast<unsigned char>(path[i]));
    if (it == n->children.end()) {
      auto leaf = std::make_unique<Node>();
      leaf->edge = path.substr(i);
      leaf->parent = n;
      Node* out = leaf.get();
      n->children.emplace(static_cast<unsigned char>(path[i]),
                          std::move(leaf));
      node_count_++;
      return out;
    }
    Node* c = it->second.get();
    const std::string& e = c->edge;
    size_t m = 0;  // Length of the common prefix of e and path[i..].
    while (m < e.size() && i + m < path.size() && e[m] == path[i + m]) m++;
    if (m == e.size()) {
      n = c;
      i += m;
      continue;
    }
    // path diverges from (or ends inside) c's edge: split the edge at m.
    auto mid = std::make_unique<Node>();
    mid->edge = e.substr(0, m);
    mid->parent = n;
    mid->subtree_scans = c->subtree_scans;
    std::unique_ptr<Node> owned = std::move(it->second);
    c->edge = e.substr(m);
    c->parent = mid.get();
    mid->children.emplace(static_cast<unsigned char>(c->edge[0]),
                          std::move(owned));
    Node* mid_raw = mid.get();
    it->second = std::move(mid);
    node_count_++;
    i += m;
    n = mid_raw;
    if (i == path.size()) return n;
    // Next iteration creates the leaf for the remaining path under mid.
  }
  return n;
}

PrefixTreeStore::Payload* PrefixTreeStore::FindPoint(
    uint64_t hash, const std::string& key) const {
  Payload* const* slot = point_index_.Find(hash);
  if (slot == nullptr) return nullptr;
  for (Payload* p = *slot; p != nullptr; p = p->hash_next) {
    if (p->key == key) return p;
  }
  return nullptr;
}

void PrefixTreeStore::IndexPoint(uint64_t hash, Payload* p) {
  p->key_hash = hash;
  Payload*& head = point_index_[hash];
  p->hash_next = head;
  head = p;
}

void PrefixTreeStore::UnindexPoint(Payload* p) {
  Payload** slot = point_index_.Find(p->key_hash);
  assert(slot != nullptr);
  Payload** link = slot;
  while (*link != p) link = &(*link)->hash_next;
  *link = p->hash_next;
  if (*slot == nullptr) point_index_.Erase(p->key_hash);
}

void PrefixTreeStore::TouchLru(Payload* p) {
  lru_.splice(lru_.begin(), lru_, p->lru_it);
}

void PrefixTreeStore::InsertLru(Payload* p) {
  lru_.push_front(p);
  p->lru_it = lru_.begin();
}

void PrefixTreeStore::BumpSubtreeScans(Node* n, int delta) {
  for (Node* x = n; x != nullptr; x = x->parent) {
    x->subtree_scans = static_cast<uint32_t>(
        static_cast<int64_t>(x->subtree_scans) + delta);
  }
}

void PrefixTreeStore::PruneFrom(Node* n) {
  while (n != nullptr && n != root_.get()) {
    if (!n->scans.empty()) return;
    Node* parent = n->parent;
    if (n->children.empty()) {
      parent->children.erase(static_cast<unsigned char>(n->edge[0]));
      node_count_--;
      n = parent;
      continue;
    }
    if (n->children.size() == 1) {
      // Payload-less pass-through: merge the single child upward to
      // restore path compression after deletions.
      std::unique_ptr<Node> child = std::move(n->children.begin()->second);
      child->edge = n->edge + child->edge;
      child->parent = parent;
      const auto slot = static_cast<unsigned char>(child->edge[0]);
      parent->children[slot] = std::move(child);  // Destroys n.
      node_count_--;
    }
    return;
  }
}

void PrefixTreeStore::RemovePayload(Payload* p, bool count_as_invalidation) {
  used_ -= p->charge;
  classes_[p->size_class].bytes -= p->charge;
  lru_.erase(p->lru_it);
  if (count_as_invalidation) tree_stats_.invalidated_payloads++;
  if (p->is_scan) {
    Node* n = p->node;
    cached_scans_--;
    BumpSubtreeScans(n, -1);
    for (auto it = n->scans.begin(); it != n->scans.end(); ++it) {
      if (it->get() == p) {
        n->scans.erase(it);  // Destroys p.
        break;
      }
    }
    PruneFrom(n);
  } else {
    UnindexPoint(p);
    delete p;
  }
}

void PrefixTreeStore::EvictUntilFits(uint64_t incoming) {
  while (used_ + incoming > options_.capacity_bytes && !lru_.empty()) {
    stats_.evictions++;
    RemovePayload(lru_.back(), /*count_as_invalidation=*/false);
  }
}

bool PrefixTreeStore::Put(const std::string& key, std::string_view value,
                          uint64_t charge, Micros ttl) {
  return PutHashed(HashString(key), key, value, charge, ttl);
}

bool PrefixTreeStore::PutHashed(uint64_t hash, const std::string& key,
                                std::string_view value, uint64_t charge,
                                Micros ttl) {
  if (charge > options_.capacity_bytes) return false;
  if (ttl <= 0) ttl = options_.default_ttl;
  // Overwrite reuses the resident payload. Detaching its accounting
  // and LRU slot first reproduces the remove-then-insert sequence
  // exactly — eviction decisions run against the store without the old
  // entry, and the detached payload can never be picked as a victim.
  // The hash-index entry is untouched: same key, same hash, same
  // payload object. Fresh refresh bookkeeping, like the AU-LRU cache.
  Payload* p = FindPoint(hash, key);
  if (p != nullptr) {
    used_ -= p->charge;
    classes_[p->size_class].bytes -= p->charge;
    lru_.erase(p->lru_it);
    EvictUntilFits(charge);
  } else {
    EvictUntilFits(charge);
    p = new Payload();
    p->key = key;
    IndexPoint(hash, p);
  }
  p->value.assign(value.data(), value.size());
  p->charge = charge;
  p->expire_at = clock_->NowMicros() + ttl;
  p->hits_this_period = 0;
  p->refresh_flagged = false;
  p->size_class = ClassFor(charge);
  InsertLru(p);
  classes_[p->size_class].bytes += charge;
  for (SizeClass& sc : classes_) sc.recent_hits *= kHitDecay;
  used_ += charge;
  stats_.inserts++;
  return true;
}

AuLookup PrefixTreeStore::Get(const std::string& key) {
  return GetHashed(HashString(key), key);
}

AuLookup PrefixTreeStore::GetHashed(uint64_t hash, const std::string& key) {
  AuLookup out;
  Payload* pe = FindPoint(hash, key);
  if (pe == nullptr) {
    stats_.misses++;
    return out;
  }
  Payload& e = *pe;
  const Micros now = clock_->NowMicros();
  if (now >= e.expire_at) {
    // Lazy expiry, AU-LRU style: count it, drop it, report a miss.
    stats_.expired++;
    stats_.misses++;
    RemovePayload(&e, /*count_as_invalidation=*/false);
    return out;
  }
  out.hit = true;
  out.value = &e.value;
  stats_.hits++;
  classes_[e.size_class].recent_hits += 1.0;
  e.hits_this_period++;
  if (!e.refresh_flagged && e.hits_this_period >= options_.refresh_min_hits &&
      e.expire_at - now <= options_.refresh_window) {
    e.refresh_flagged = true;
    out.needs_refresh = true;
    refresh_queue_.push_back(key);
    refresh_requests_++;
  }
  TouchLru(&e);
  return out;
}

bool PrefixTreeStore::Erase(const std::string& key) {
  return EraseHashed(HashString(key), key);
}

bool PrefixTreeStore::EraseHashed(uint64_t hash, const std::string& key) {
  // Covering-scan invalidation: a write inside a cached range drops
  // that range. The root→key walk only runs when scans are cached at
  // all (subtree counters); the point entry itself comes from the hash
  // index. Removal is deferred past the walk because pruning
  // restructures the path being walked.
  if (root_ != nullptr && root_->subtree_scans > 0) {
    std::vector<Payload*> covering;
    Node* n = root_.get();
    size_t i = 0;
    while (true) {
      for (auto& sp : n->scans) covering.push_back(sp.get());
      if (i == key.size()) break;
      auto it = n->children.find(static_cast<unsigned char>(key[i]));
      if (it == n->children.end()) break;
      Node* c = it->second.get();
      const std::string& e = c->edge;
      if (i + e.size() > key.size() || key.compare(i, e.size(), e) != 0) break;
      i += e.size();
      n = c;
    }
    for (Payload* p : covering) {
      tree_stats_.scans_dropped_by_write++;
      RemovePayload(p, /*count_as_invalidation=*/false);
    }
  }
  Payload* point = FindPoint(hash, key);
  if (point == nullptr) return false;
  RemovePayload(point, /*count_as_invalidation=*/false);
  return true;
}

bool PrefixTreeStore::Contains(const std::string& key) const {
  return FindPoint(HashString(key), key) != nullptr;
}

std::vector<std::string> PrefixTreeStore::TakeRefreshQueue() {
  std::vector<std::string> out;
  out.swap(refresh_queue_);
  return out;
}

bool PrefixTreeStore::PutScan(const std::string& prefix, uint32_t limit,
                              std::string payload, uint64_t charge,
                              Micros ttl) {
  if (charge > options_.capacity_bytes) return false;
  if (ttl <= 0) ttl = options_.default_ttl;
  if (const Node* en = FindExact(prefix); en != nullptr) {
    for (auto& sp : en->scans) {
      if (sp->limit == limit) {
        RemovePayload(sp.get(), /*count_as_invalidation=*/false);
        break;
      }
    }
  }
  EvictUntilFits(charge);
  Node* n = InsertPath(prefix);
  auto p = std::make_unique<Payload>();
  p->node = n;
  p->is_scan = true;
  p->limit = limit;
  p->value = std::move(payload);
  p->charge = charge;
  p->expire_at = clock_->NowMicros() + ttl;
  p->size_class = ClassFor(charge);
  InsertLru(p.get());
  classes_[p->size_class].bytes += charge;
  for (SizeClass& sc : classes_) sc.recent_hits *= kHitDecay;
  used_ += charge;
  stats_.inserts++;
  tree_stats_.scan_inserts++;
  cached_scans_++;
  BumpSubtreeScans(n, +1);
  n->scans.push_back(std::move(p));
  return true;
}

AuLookup PrefixTreeStore::GetScan(const std::string& prefix, uint32_t limit) {
  AuLookup out;
  const Node* n = FindExact(prefix);
  Payload* e = nullptr;
  if (n != nullptr) {
    for (auto& sp : n->scans) {
      if (sp->limit == limit) {
        e = sp.get();
        break;
      }
    }
  }
  if (e == nullptr) {
    stats_.misses++;
    tree_stats_.scan_misses++;
    return out;
  }
  const Micros now = clock_->NowMicros();
  if (now >= e->expire_at) {
    stats_.expired++;
    stats_.misses++;
    tree_stats_.scan_misses++;
    RemovePayload(e, /*count_as_invalidation=*/false);
    return out;
  }
  out.hit = true;
  out.value = &e->value;
  stats_.hits++;
  tree_stats_.scan_hits++;
  classes_[e->size_class].recent_hits += 1.0;
  TouchLru(e);
  return out;
}

void PrefixTreeStore::CollectSubtree(Node* n,
                                     std::vector<Payload*>& out) const {
  if (n->subtree_scans == 0) return;
  for (auto& sp : n->scans) out.push_back(sp.get());
  for (auto& [byte, child] : n->children) {
    (void)byte;
    CollectSubtree(child.get(), out);
  }
}

size_t PrefixTreeStore::InvalidatePrefix(const std::string& prefix) {
  tree_stats_.prefix_invalidations++;
  std::vector<Payload*> drop;
  // Point entries under the prefix come from the flat index by key
  // compare. The tree would give O(subtree), but points no longer
  // reside there: prefix invalidation is the rare cutover/migration
  // path while point lookups run per request — the trade goes to the
  // lookups. Collect first, remove after: removal mutates the index.
  point_index_.ForEach([&](uint64_t, Payload*& head) {
    for (Payload* p = head; p != nullptr; p = p->hash_next) {
      if (p->key.size() >= prefix.size() &&
          p->key.compare(0, prefix.size(), prefix) == 0) {
        drop.push_back(p);
      }
    }
  });
  if (root_ != nullptr && root_->subtree_scans > 0) {
    Node* subtree = nullptr;
    Node* n = root_.get();
    size_t i = 0;
    while (true) {
      if (i >= prefix.size()) {
        subtree = n;  // Exact node: its whole subtree is covered.
        break;
      }
      // Scans cached on strict-ancestor nodes span the invalidated
      // prefix — conservatively stale, drop them too.
      for (auto& sp : n->scans) drop.push_back(sp.get());
      auto it = n->children.find(static_cast<unsigned char>(prefix[i]));
      if (it == n->children.end()) break;
      Node* c = it->second.get();
      const std::string& e = c->edge;
      const size_t remain = prefix.size() - i;
      if (e.size() >= remain) {
        // Prefix ends on/inside c's edge: if the edge extends the
        // prefix, every key below c starts with it — the whole subtree
        // is covered.
        if (e.compare(0, remain, prefix, i, remain) == 0) subtree = c;
        break;
      }
      if (prefix.compare(i, e.size(), e) != 0) break;
      i += e.size();
      n = c;
    }
    if (subtree != nullptr) CollectSubtree(subtree, drop);
  }
  for (Payload* p : drop) RemovePayload(p, /*count_as_invalidation=*/true);
  return drop.size();
}

size_t PrefixTreeStore::InvalidateScans() {
  tree_stats_.prefix_invalidations++;
  if (!root_ || root_->subtree_scans == 0) return 0;
  std::vector<Payload*> drop;
  CollectSubtree(root_.get(), drop);
  for (Payload* p : drop) RemovePayload(p, /*count_as_invalidation=*/true);
  return drop.size();
}

void PrefixTreeStore::Clear() {
  root_.reset();
  DeleteAllPoints();
  lru_.clear();
  refresh_queue_.clear();
  used_ = 0;
  node_count_ = 0;
  cached_scans_ = 0;
  for (SizeClass& sc : classes_) sc = SizeClass{};
}

}  // namespace cache
}  // namespace abase
