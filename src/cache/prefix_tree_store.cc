#include "cache/prefix_tree_store.h"

#include <cassert>
#include <utility>

namespace abase {
namespace cache {

/// One cached payload: a point entry at its key's node, or a scan
/// result at its prefix's node. Owned by the node; the LRU and
/// size-class structures hold raw pointers.
struct PrefixTreeStore::Payload {
  Node* node = nullptr;
  bool is_scan = false;
  uint32_t limit = 0;  ///< Scan payloads: the cached scan's limit.
  std::string value;
  uint64_t charge = 0;
  Micros expire_at = 0;
  uint32_t hits_this_period = 0;
  bool refresh_flagged = false;
  int size_class = 0;
  std::list<Payload*>::iterator lru_it;
};

/// Compressed radix-tree node. `edge` is the label on the edge from the
/// parent; a node's path is the concatenation of edges from the root.
struct PrefixTreeStore::Node {
  std::string edge;
  Node* parent = nullptr;
  std::map<unsigned char, std::unique_ptr<Node>> children;
  std::unique_ptr<Payload> point;                 ///< Exact-key entry.
  std::vector<std::unique_ptr<Payload>> scans;    ///< By scan limit.
  /// Scan payloads in this subtree (self included) — gates the
  /// covering-scan walk and scan-only invalidation.
  uint32_t subtree_scans = 0;
};

PrefixTreeStore::PrefixTreeStore(AuLruOptions options, const Clock* clock)
    : options_(options), clock_(clock) {
  assert(clock_ != nullptr);
}

PrefixTreeStore::~PrefixTreeStore() = default;

int PrefixTreeStore::ClassFor(uint64_t charge) {
  int c = 0;
  uint64_t limit = kMinClassBytes;
  while (c < kNumClasses - 1 && charge > limit) {
    limit <<= 1;
    c++;
  }
  return c;
}

double PrefixTreeStore::ClassDensity(int c) const {
  const SizeClass& sc = classes_[c];
  return sc.bytes == 0 ? 0.0
                       : sc.recent_hits / static_cast<double>(sc.bytes);
}

const PrefixTreeStore::Node* PrefixTreeStore::FindExact(
    const std::string& key) const {
  const Node* n = root_.get();
  if (n == nullptr) return nullptr;
  size_t i = 0;
  while (i < key.size()) {
    auto it = n->children.find(static_cast<unsigned char>(key[i]));
    if (it == n->children.end()) return nullptr;
    const Node* c = it->second.get();
    const std::string& e = c->edge;
    if (i + e.size() > key.size() || key.compare(i, e.size(), e) != 0) {
      return nullptr;
    }
    i += e.size();
    n = c;
  }
  return n;
}

PrefixTreeStore::Node* PrefixTreeStore::InsertPath(const std::string& path) {
  if (!root_) {
    root_ = std::make_unique<Node>();
    node_count_ = 1;
  }
  Node* n = root_.get();
  size_t i = 0;
  while (i < path.size()) {
    auto it = n->children.find(static_cast<unsigned char>(path[i]));
    if (it == n->children.end()) {
      auto leaf = std::make_unique<Node>();
      leaf->edge = path.substr(i);
      leaf->parent = n;
      Node* out = leaf.get();
      n->children.emplace(static_cast<unsigned char>(path[i]),
                          std::move(leaf));
      node_count_++;
      return out;
    }
    Node* c = it->second.get();
    const std::string& e = c->edge;
    size_t m = 0;  // Length of the common prefix of e and path[i..].
    while (m < e.size() && i + m < path.size() && e[m] == path[i + m]) m++;
    if (m == e.size()) {
      n = c;
      i += m;
      continue;
    }
    // path diverges from (or ends inside) c's edge: split the edge at m.
    auto mid = std::make_unique<Node>();
    mid->edge = e.substr(0, m);
    mid->parent = n;
    mid->subtree_scans = c->subtree_scans;
    std::unique_ptr<Node> owned = std::move(it->second);
    c->edge = e.substr(m);
    c->parent = mid.get();
    mid->children.emplace(static_cast<unsigned char>(c->edge[0]),
                          std::move(owned));
    Node* mid_raw = mid.get();
    it->second = std::move(mid);
    node_count_++;
    i += m;
    n = mid_raw;
    if (i == path.size()) return n;
    // Next iteration creates the leaf for the remaining path under mid.
  }
  return n;
}

void PrefixTreeStore::TouchLru(Payload* p) {
  lru_.splice(lru_.begin(), lru_, p->lru_it);
}

void PrefixTreeStore::InsertLru(Payload* p) {
  lru_.push_front(p);
  p->lru_it = lru_.begin();
}

void PrefixTreeStore::BumpSubtreeScans(Node* n, int delta) {
  for (Node* x = n; x != nullptr; x = x->parent) {
    x->subtree_scans = static_cast<uint32_t>(
        static_cast<int64_t>(x->subtree_scans) + delta);
  }
}

void PrefixTreeStore::PruneFrom(Node* n) {
  while (n != nullptr && n != root_.get()) {
    if (n->point || !n->scans.empty()) return;
    Node* parent = n->parent;
    if (n->children.empty()) {
      parent->children.erase(static_cast<unsigned char>(n->edge[0]));
      node_count_--;
      n = parent;
      continue;
    }
    if (n->children.size() == 1) {
      // Payload-less pass-through: merge the single child upward to
      // restore path compression after deletions.
      std::unique_ptr<Node> child = std::move(n->children.begin()->second);
      child->edge = n->edge + child->edge;
      child->parent = parent;
      const auto slot = static_cast<unsigned char>(child->edge[0]);
      parent->children[slot] = std::move(child);  // Destroys n.
      node_count_--;
    }
    return;
  }
}

void PrefixTreeStore::RemovePayload(Payload* p, bool count_as_invalidation) {
  Node* n = p->node;
  used_ -= p->charge;
  classes_[p->size_class].bytes -= p->charge;
  lru_.erase(p->lru_it);
  if (count_as_invalidation) tree_stats_.invalidated_payloads++;
  if (p->is_scan) {
    cached_scans_--;
    BumpSubtreeScans(n, -1);
    for (auto it = n->scans.begin(); it != n->scans.end(); ++it) {
      if (it->get() == p) {
        n->scans.erase(it);  // Destroys p.
        break;
      }
    }
  } else {
    n->point.reset();  // Destroys p.
  }
  PruneFrom(n);
}

void PrefixTreeStore::EvictUntilFits(uint64_t incoming) {
  while (used_ + incoming > options_.capacity_bytes && !lru_.empty()) {
    stats_.evictions++;
    RemovePayload(lru_.back(), /*count_as_invalidation=*/false);
  }
}

bool PrefixTreeStore::Put(const std::string& key, std::string value,
                          uint64_t charge, Micros ttl) {
  if (charge > options_.capacity_bytes) return false;
  if (ttl <= 0) ttl = options_.default_ttl;
  // Overwrite: the slot's current entry goes first (fresh refresh
  // bookkeeping), exactly like the AU-LRU cache.
  if (const Node* en = FindExact(key); en != nullptr && en->point) {
    RemovePayload(en->point.get(), /*count_as_invalidation=*/false);
  }
  EvictUntilFits(charge);
  Node* n = InsertPath(key);
  auto p = std::make_unique<Payload>();
  p->node = n;
  p->value = std::move(value);
  p->charge = charge;
  p->expire_at = clock_->NowMicros() + ttl;
  p->size_class = ClassFor(charge);
  InsertLru(p.get());
  classes_[p->size_class].bytes += charge;
  for (SizeClass& sc : classes_) sc.recent_hits *= kHitDecay;
  used_ += charge;
  stats_.inserts++;
  n->point = std::move(p);
  return true;
}

AuLookup PrefixTreeStore::Get(const std::string& key) {
  AuLookup out;
  const Node* n = FindExact(key);
  if (n == nullptr || !n->point) {
    stats_.misses++;
    return out;
  }
  Payload& e = *n->point;
  const Micros now = clock_->NowMicros();
  if (now >= e.expire_at) {
    // Lazy expiry, AU-LRU style: count it, drop it, report a miss.
    stats_.expired++;
    stats_.misses++;
    RemovePayload(&e, /*count_as_invalidation=*/false);
    return out;
  }
  out.hit = true;
  out.value = &e.value;
  stats_.hits++;
  classes_[e.size_class].recent_hits += 1.0;
  e.hits_this_period++;
  if (!e.refresh_flagged && e.hits_this_period >= options_.refresh_min_hits &&
      e.expire_at - now <= options_.refresh_window) {
    e.refresh_flagged = true;
    out.needs_refresh = true;
    refresh_queue_.push_back(key);
    refresh_requests_++;
  }
  TouchLru(&e);
  return out;
}

bool PrefixTreeStore::Erase(const std::string& key) {
  return EraseHashed(0, key);
}

bool PrefixTreeStore::EraseHashed(uint64_t /*hash*/, const std::string& key) {
  if (!root_) return false;
  // One walk serves both jobs: find the exact point entry, and collect
  // every cached scan whose prefix covers `key` (a write inside a
  // cached range invalidates it). Removal is deferred past the walk
  // because pruning restructures the path being walked.
  const bool walk_scans = root_->subtree_scans > 0;
  std::vector<Payload*> covering;
  Payload* point = nullptr;
  Node* n = root_.get();
  size_t i = 0;
  while (true) {
    if (walk_scans) {
      for (auto& sp : n->scans) covering.push_back(sp.get());
    }
    if (i == key.size()) {
      point = n->point.get();
      break;
    }
    auto it = n->children.find(static_cast<unsigned char>(key[i]));
    if (it == n->children.end()) break;
    Node* c = it->second.get();
    const std::string& e = c->edge;
    if (i + e.size() > key.size() || key.compare(i, e.size(), e) != 0) break;
    i += e.size();
    n = c;
  }
  for (Payload* p : covering) {
    tree_stats_.scans_dropped_by_write++;
    RemovePayload(p, /*count_as_invalidation=*/false);
  }
  if (point == nullptr) return false;
  RemovePayload(point, /*count_as_invalidation=*/false);
  return true;
}

bool PrefixTreeStore::Contains(const std::string& key) const {
  const Node* n = FindExact(key);
  return n != nullptr && n->point != nullptr;
}

std::vector<std::string> PrefixTreeStore::TakeRefreshQueue() {
  std::vector<std::string> out;
  out.swap(refresh_queue_);
  return out;
}

bool PrefixTreeStore::PutScan(const std::string& prefix, uint32_t limit,
                              std::string payload, uint64_t charge,
                              Micros ttl) {
  if (charge > options_.capacity_bytes) return false;
  if (ttl <= 0) ttl = options_.default_ttl;
  if (const Node* en = FindExact(prefix); en != nullptr) {
    for (auto& sp : en->scans) {
      if (sp->limit == limit) {
        RemovePayload(sp.get(), /*count_as_invalidation=*/false);
        break;
      }
    }
  }
  EvictUntilFits(charge);
  Node* n = InsertPath(prefix);
  auto p = std::make_unique<Payload>();
  p->node = n;
  p->is_scan = true;
  p->limit = limit;
  p->value = std::move(payload);
  p->charge = charge;
  p->expire_at = clock_->NowMicros() + ttl;
  p->size_class = ClassFor(charge);
  InsertLru(p.get());
  classes_[p->size_class].bytes += charge;
  for (SizeClass& sc : classes_) sc.recent_hits *= kHitDecay;
  used_ += charge;
  stats_.inserts++;
  tree_stats_.scan_inserts++;
  cached_scans_++;
  BumpSubtreeScans(n, +1);
  n->scans.push_back(std::move(p));
  return true;
}

AuLookup PrefixTreeStore::GetScan(const std::string& prefix, uint32_t limit) {
  AuLookup out;
  const Node* n = FindExact(prefix);
  Payload* e = nullptr;
  if (n != nullptr) {
    for (auto& sp : n->scans) {
      if (sp->limit == limit) {
        e = sp.get();
        break;
      }
    }
  }
  if (e == nullptr) {
    stats_.misses++;
    tree_stats_.scan_misses++;
    return out;
  }
  const Micros now = clock_->NowMicros();
  if (now >= e->expire_at) {
    stats_.expired++;
    stats_.misses++;
    tree_stats_.scan_misses++;
    RemovePayload(e, /*count_as_invalidation=*/false);
    return out;
  }
  out.hit = true;
  out.value = &e->value;
  stats_.hits++;
  tree_stats_.scan_hits++;
  classes_[e->size_class].recent_hits += 1.0;
  TouchLru(e);
  return out;
}

void PrefixTreeStore::CollectSubtree(Node* n, bool scans_only,
                                     std::vector<Payload*>& out) const {
  if (scans_only && n->subtree_scans == 0) return;
  if (!scans_only && n->point) out.push_back(n->point.get());
  for (auto& sp : n->scans) out.push_back(sp.get());
  for (auto& [byte, child] : n->children) {
    (void)byte;
    CollectSubtree(child.get(), scans_only, out);
  }
}

size_t PrefixTreeStore::InvalidatePrefix(const std::string& prefix) {
  tree_stats_.prefix_invalidations++;
  if (!root_) return 0;
  std::vector<Payload*> drop;
  Node* subtree = nullptr;
  Node* n = root_.get();
  size_t i = 0;
  while (true) {
    if (i >= prefix.size()) {
      subtree = n;  // Exact node: its whole subtree is covered.
      break;
    }
    // Scans cached on strict-ancestor nodes span the invalidated prefix
    // — conservatively stale, drop them too.
    for (auto& sp : n->scans) drop.push_back(sp.get());
    auto it = n->children.find(static_cast<unsigned char>(prefix[i]));
    if (it == n->children.end()) break;
    Node* c = it->second.get();
    const std::string& e = c->edge;
    const size_t remain = prefix.size() - i;
    if (e.size() >= remain) {
      // Prefix ends on/inside c's edge: if the edge extends the prefix,
      // every key below c starts with it — the whole subtree is covered.
      if (e.compare(0, remain, prefix, i, remain) == 0) subtree = c;
      break;
    }
    if (prefix.compare(i, e.size(), e) != 0) break;
    i += e.size();
    n = c;
  }
  if (subtree != nullptr) {
    CollectSubtree(subtree, /*scans_only=*/false, drop);
  }
  for (Payload* p : drop) RemovePayload(p, /*count_as_invalidation=*/true);
  return drop.size();
}

size_t PrefixTreeStore::InvalidateScans() {
  tree_stats_.prefix_invalidations++;
  if (!root_ || root_->subtree_scans == 0) return 0;
  std::vector<Payload*> drop;
  CollectSubtree(root_.get(), /*scans_only=*/true, drop);
  for (Payload* p : drop) RemovePayload(p, /*count_as_invalidation=*/true);
  return drop.size();
}

void PrefixTreeStore::Clear() {
  root_.reset();
  lru_.clear();
  refresh_queue_.clear();
  used_ = 0;
  node_count_ = 0;
  cached_scans_ = 0;
  for (SizeClass& sc : classes_) sc = SizeClass{};
}

}  // namespace cache
}  // namespace abase
