// Plain byte-bounded LRU cache: the baseline the paper's SA-LRU and AU-LRU
// are compared against.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "cache/cache_stats.h"

namespace abase {
namespace cache {

/// Least-recently-used cache bounded by total payload bytes. Entries larger
/// than the capacity are rejected rather than thrashing the whole cache.
class LruCache {
 public:
  explicit LruCache(uint64_t capacity_bytes);

  /// Inserts or refreshes `key`. `charge` is the entry's byte footprint.
  /// Returns false if the entry alone exceeds capacity (not inserted).
  bool Put(const std::string& key, std::string value, uint64_t charge);

  /// Looks up `key`, promoting it to most-recent on hit.
  std::optional<std::string> Get(const std::string& key);

  /// Removes `key` if present; returns true if something was erased.
  bool Erase(const std::string& key);

  bool Contains(const std::string& key) const;

  uint64_t used_bytes() const { return used_; }
  uint64_t capacity_bytes() const { return capacity_; }
  size_t entry_count() const { return map_.size(); }
  const CacheStats& stats() const { return stats_; }

  void Clear();

 private:
  struct Entry {
    std::string key;
    std::string value;
    uint64_t charge;
  };

  void EvictUntilFits(uint64_t incoming);

  uint64_t capacity_;
  uint64_t used_ = 0;
  std::list<Entry> lru_;  ///< Front = most recent.
  std::unordered_map<std::string, std::list<Entry>::iterator> map_;
  CacheStats stats_;
};

}  // namespace cache
}  // namespace abase
