// SA-LRU — Size-Aware LRU (paper Section 4.4, DataNode-layer cache).
//
// Entries are grouped into size classes (powers of two of the payload
// size). Each class keeps its own LRU list and hit counters. When space is
// needed, the victim class is the one with the lowest *hit density* —
// recent hits per cached byte — so large, rarely-hit items are evicted
// before small, frequently-hit ones. This is the paper's "individual
// eviction policies for items of different sizes": retaining small data
// (cheap to keep, high aggregate hit yield) improves the overall hit ratio
// under mixed KV sizes.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cache/cache_stats.h"
#include "common/clock.h"
#include "common/flat_map.h"

namespace abase {
namespace cache {

/// Tuning knobs for SA-LRU.
struct SaLruOptions {
  uint64_t capacity_bytes = 64ull << 20;
  /// Smallest size class covers (0, min_class_bytes]; each further class
  /// doubles the upper bound.
  uint64_t min_class_bytes = 256;
  int num_classes = 8;
  /// Hit counters decay by this factor whenever the cache evicts, so the
  /// density score tracks *recent* utility rather than all-time counts.
  double hit_decay = 0.98;
};

/// Size-aware LRU cache. Single-threaded (per-DataNode, serialized by the
/// simulator); wrap externally if shared.
class SaLruCache {
 public:
  /// `clock` is required only when entries carry expirations; without it
  /// all entries are treated as immortal.
  explicit SaLruCache(SaLruOptions options = {},
                      const Clock* clock = nullptr);

  /// Inserts or refreshes `key` with the given byte footprint. Oversized
  /// entries (charge > capacity) are rejected. `expire_at` of 0 means no
  /// expiry; a value's cache lifetime must not outlive its engine TTL.
  /// The value is copied into the entry — overwrites reuse the resident
  /// entry's buffers instead of allocating.
  bool Put(const std::string& key, std::string_view value, uint64_t charge,
           Micros expire_at = 0);

  /// Lookup; promotes within the entry's size class on hit. Expired
  /// entries are erased and count as misses.
  std::optional<std::string> Get(const std::string& key);

  /// Like Get, and also reports the entry's expiry deadline (0 = none)
  /// so callers can propagate TTLs to downstream caches.
  std::optional<std::string> GetWithExpiry(const std::string& key,
                                           Micros* expire_at);

  /// Zero-copy lookup: returns a pointer to the cached payload (nullptr
  /// on miss) valid only until the next cache mutation. Same promotion
  /// and expiry semantics as GetWithExpiry; the request hot path uses
  /// this to copy into a recycled buffer instead of allocating.
  const std::string* GetRef(const std::string& key, Micros* expire_at);

  bool Erase(const std::string& key);
  bool Contains(const std::string& key) const;

  // -- Hashed entry points ----------------------------------------------------
  // Identical semantics with a caller-computed HashString(key). The hot
  // request path carries the cache-key hash with the scheduler entry
  // (computed once at Submit from the replica's prefix-hash state), so
  // probes and write invalidations skip re-hashing the key bytes. The
  // hash MUST equal HashString(key); the full key still rides along for
  // collision detection.

  bool PutHashed(uint64_t hash, const std::string& key,
                 std::string_view value, uint64_t charge,
                 Micros expire_at = 0);
  const std::string* GetRefHashed(uint64_t hash, const std::string& key,
                                  Micros* expire_at);
  bool EraseHashed(uint64_t hash, const std::string& key);

  /// Drops every entry (a node crash loses the in-memory cache). Hit/miss
  /// statistics are kept; class hit counters reset.
  void Clear();

  uint64_t used_bytes() const { return used_; }
  uint64_t capacity_bytes() const { return options_.capacity_bytes; }
  size_t entry_count() const { return map_.size(); }
  const CacheStats& stats() const { return stats_; }

  /// Bytes currently held by each size class (diagnostics / tests).
  std::vector<uint64_t> ClassBytes() const;
  /// Recent-hit density score of each class (hits per byte).
  std::vector<double> ClassDensity() const;

 private:
  struct Entry {
    std::string key;
    std::string value;
    uint64_t charge;
    int size_class;
    Micros expire_at;  ///< 0 = never.
  };
  struct SizeClass {
    std::list<Entry> lru;  ///< Front = most recent.
    uint64_t bytes = 0;
    double recent_hits = 0;  ///< Decayed hit counter.
  };

  int ClassFor(uint64_t charge) const;
  /// Picks the class with the lowest hit density that holds any bytes.
  int VictimClass() const;
  void EvictUntilFits(uint64_t incoming);
  void DecayHits();

  SaLruOptions options_;
  const Clock* clock_;
  std::vector<SizeClass> classes_;
  /// Key-hash index (FNV-1a of the key string); entries hold the full
  /// key, so a hash collision is detected by comparing it and treated
  /// as a miss (Get/Erase) or evicts the collided entry (Put).
  FlatMap64<std::list<Entry>::iterator> map_;
  /// At most one detached entry, parked here between the overwrite
  /// detach and the reinsert in the same Put call. Splicing through it
  /// keeps the list node and both string buffers alive across the
  /// eviction pass, so overwriting a resident key allocates nothing.
  std::list<Entry> spare_;
  uint64_t used_ = 0;
  CacheStats stats_;
};

}  // namespace cache
}  // namespace abase
