// AU-LRU — Active-Update LRU (paper Section 4.4, proxy-layer cache).
//
// A TTL'd LRU with an *active update* mechanism: when a hot entry is
// accessed close to its expiry, the cache reports that the entry should be
// refreshed. The proxy then re-fetches from the DataNode in the background
// and re-inserts, so a hot key never actually expires and its traffic never
// stampedes the DataNode — the "potential spikes in requests due to expired
// cache entries" the paper calls out.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <vector>

#include "cache/cache_stats.h"
#include "common/clock.h"
#include "common/flat_map.h"

namespace abase {
namespace cache {

/// AU-LRU tuning.
struct AuLruOptions {
  uint64_t capacity_bytes = 8ull << 20;  ///< Proxies have small memory
                                         ///< budgets (<10 GB in prod;
                                         ///< scaled down here).
  Micros default_ttl = 60 * kMicrosPerSecond;
  /// An access within this window before expiry marks the entry for
  /// active refresh.
  Micros refresh_window = 10 * kMicrosPerSecond;
  /// Minimum accesses inside the current TTL period for an entry to be
  /// considered hot enough to refresh proactively.
  uint32_t refresh_min_hits = 2;
};

/// Result of an AU-LRU lookup. `value` borrows the cached string — it
/// stays valid only until the next cache mutation; callers that need the
/// payload beyond that must copy it (the hot path only needs the size).
struct AuLookup {
  bool hit = false;
  bool needs_refresh = false;      ///< Caller should re-fetch + Put soon.
  const std::string* value = nullptr;  ///< Non-null only when hit.
};

/// Active-update LRU cache with per-entry TTL. Single-threaded.
class AuLruCache {
 public:
  AuLruCache(AuLruOptions options, const Clock* clock);

  /// Inserts or refreshes `key`. `ttl` of 0 uses the default TTL. Resets
  /// the entry's refresh bookkeeping.
  bool Put(const std::string& key, std::string value, uint64_t charge,
           Micros ttl = 0);

  /// Lookup. Expired entries count as misses and are erased. A hit close
  /// to expiry on a hot entry sets `needs_refresh` (once per TTL period).
  AuLookup Get(const std::string& key);

  bool Erase(const std::string& key);
  /// Erase with a caller-computed HashString(key) — write-invalidation
  /// broadcasts hash once and erase across every proxy of the tenant.
  bool EraseHashed(uint64_t hash, const std::string& key);
  bool Contains(const std::string& key) const;

  /// Entries currently flagged for refresh and not yet re-Put. The proxy
  /// drains this each tick to schedule background re-fetches.
  std::vector<std::string> TakeRefreshQueue();

  uint64_t used_bytes() const { return used_; }
  uint64_t capacity_bytes() const { return options_.capacity_bytes; }
  size_t entry_count() const { return map_.size(); }
  const CacheStats& stats() const { return stats_; }
  uint64_t refresh_requests() const { return refresh_requests_; }

 private:
  struct Entry {
    std::string key;
    std::string value;
    uint64_t charge;
    Micros expire_at;
    uint32_t hits_this_period;
    bool refresh_flagged;
  };

  void EvictUntilFits(uint64_t incoming);
  void RemoveEntry(std::list<Entry>::iterator it);

  AuLruOptions options_;
  const Clock* clock_;
  std::list<Entry> lru_;  ///< Front = most recent.
  /// Key-hash index (FNV-1a of the key string); entries hold the full
  /// key, so a hash collision is detected by comparing it and treated
  /// as a miss (Get/Erase) or evicts the collided entry (Put) — either
  /// way the index stays bijective with the list.
  FlatMap64<std::list<Entry>::iterator> map_;
  std::vector<std::string> refresh_queue_;
  uint64_t used_ = 0;
  uint64_t refresh_requests_ = 0;
  CacheStats stats_;
};

}  // namespace cache
}  // namespace abase
