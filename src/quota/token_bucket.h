// Token bucket used by both levels of the hierarchical request restriction
// (paper Section 4.2). Tokens are RUs; refill rate is the quota in RU/s.
#pragma once

#include <algorithm>

#include "common/clock.h"

namespace abase {
namespace quota {

/// Continuous-refill token bucket. Deterministic given a Clock.
class TokenBucket {
 public:
  /// `rate_per_sec`: sustained RU/s. `burst_seconds`: bucket depth as a
  /// multiple of one second of quota (1.0 = classic one-second burst).
  TokenBucket(double rate_per_sec, double burst_seconds, const Clock* clock)
      : rate_(rate_per_sec),
        burst_seconds_(burst_seconds),
        clock_(clock),
        tokens_(rate_per_sec * burst_seconds),
        last_refill_(clock->NowMicros()) {}

  /// Attempts to take `cost` tokens; returns false (and consumes nothing)
  /// if insufficient tokens are available.
  bool TryConsume(double cost) {
    Refill();
    if (tokens_ < cost) return false;
    tokens_ -= cost;
    return true;
  }

  /// Unconditionally consumes (may drive tokens negative). Used where the
  /// charge is only known after execution (actual read bytes). The
  /// deficit is bounded at one bucket depth so a burst of underestimated
  /// requests cannot starve the tenant indefinitely.
  void ForceConsume(double cost) {
    Refill();
    tokens_ = std::max(tokens_ - cost, -rate_ * burst_seconds_);
  }

  /// Current token level (post-refill).
  double Available() {
    Refill();
    return tokens_;
  }

  /// Changes the sustained rate; the bucket depth rescales with it.
  void SetRate(double rate_per_sec) {
    Refill();
    double max_tokens = rate_per_sec * burst_seconds_;
    rate_ = rate_per_sec;
    tokens_ = std::min(tokens_, max_tokens);
  }

  double rate() const { return rate_; }

 private:
  void Refill() {
    Micros now = clock_->NowMicros();
    if (now <= last_refill_) return;
    double elapsed_sec = static_cast<double>(now - last_refill_) /
                         static_cast<double>(kMicrosPerSecond);
    tokens_ = std::min(tokens_ + elapsed_sec * rate_, rate_ * burst_seconds_);
    last_refill_ = now;
  }

  double rate_;
  double burst_seconds_;
  const Clock* clock_;
  double tokens_;
  Micros last_refill_;
};

}  // namespace quota
}  // namespace abase
