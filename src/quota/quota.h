// Hierarchical request restriction — paper Section 4.2.
//
// Proxy level: each proxy receives proxy_quota = tenant_quota / #proxies
// and may autonomously serve up to 2x that (asynchronous control, no
// per-request round trip to the MetaServer). The MetaServer monitors
// aggregate tenant traffic and, when it exceeds the tenant quota, directs
// proxies back to their standard 1x quota.
//
// Partition level: partition_quota = tenant_quota / #partitions; a
// DataNode rejects, at the request-queue entry point, traffic that would
// push a partition beyond 3x its partition_quota (hash partitioning keeps
// per-partition traffic roughly even, so 3x headroom covers normal skew).
#pragma once

#include <cstdint>
#include <memory>

#include "common/clock.h"
#include "common/types.h"
#include "quota/token_bucket.h"

namespace abase {
namespace quota {

/// Autonomy multiplier a proxy enjoys until the MetaServer clamps it.
constexpr double kProxyAutonomyFactor = 2.0;
/// Partition ceiling relative to its fair share.
constexpr double kPartitionQuotaFactor = 3.0;

/// Per-proxy RU limiter.
class ProxyQuota {
 public:
  /// `proxy_quota_ru`: this proxy's fair share (tenant quota / #proxies).
  ProxyQuota(double proxy_quota_ru, const Clock* clock)
      : base_quota_(proxy_quota_ru),
        clamped_(false),
        bucket_(proxy_quota_ru * kProxyAutonomyFactor, 1.0, clock) {}

  /// Admission check for an estimated request cost.
  bool TryAdmit(double estimated_ru) { return bucket_.TryConsume(estimated_ru); }

  /// Settles the difference between estimate and actual charge.
  void SettleActual(double estimated_ru, double actual_ru) {
    bucket_.ForceConsume(actual_ru - estimated_ru);
  }

  /// MetaServer direction: clamp to standard quota (true) or restore the
  /// 2x autonomous ceiling (false).
  void SetClamped(bool clamped) {
    if (clamped == clamped_) return;
    clamped_ = clamped;
    bucket_.SetRate(clamped ? base_quota_
                            : base_quota_ * kProxyAutonomyFactor);
  }

  /// Re-bases the fair share after tenant scaling or proxy fleet resize.
  void SetBaseQuota(double proxy_quota_ru) {
    base_quota_ = proxy_quota_ru;
    bucket_.SetRate(clamped_ ? base_quota_
                             : base_quota_ * kProxyAutonomyFactor);
  }

  bool clamped() const { return clamped_; }
  double base_quota() const { return base_quota_; }

 private:
  double base_quota_;
  bool clamped_;
  TokenBucket bucket_;
};

/// Per-partition RU limiter enforced at the DataNode request queue.
/// Sustained admission matches the partition quota; the bucket holds 3x
/// depth so a partition "never surpasses three times its partition_quota"
/// instantaneously but converges to 1x under sustained pressure (this is
/// why Figure 7 shows tenant 1 capped at exactly the partition quota).
class PartitionQuota {
 public:
  PartitionQuota(double partition_quota_ru, const Clock* clock)
      : base_quota_(partition_quota_ru),
        enabled_(true),
        bucket_(partition_quota_ru, kPartitionQuotaFactor, clock) {}

  /// Admission at the queue entry point. When disabled (for the Figure 7
  /// ablation), everything is admitted.
  bool TryAdmit(double estimated_ru) {
    if (!enabled_) return true;
    return bucket_.TryConsume(estimated_ru);
  }

  void SettleActual(double estimated_ru, double actual_ru) {
    if (!enabled_) return;
    bucket_.ForceConsume(actual_ru - estimated_ru);
  }

  void SetBaseQuota(double partition_quota_ru) {
    base_quota_ = partition_quota_ru;
    bucket_.SetRate(partition_quota_ru);
  }

  void SetEnabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }
  double base_quota() const { return base_quota_; }

 private:
  double base_quota_;
  bool enabled_;
  TokenBucket bucket_;
};

/// MetaServer-side monitor for one tenant's proxy fleet: aggregates
/// reported proxy traffic and decides the clamp state asynchronously
/// (paper: "the MetaServer continuously monitors each proxy's traffic and,
/// if exceeded, directs the proxies to revert to their standard quota").
class TenantTrafficMonitor {
 public:
  /// `tenant_quota_ru`: total RU/s the tenant purchased.
  explicit TenantTrafficMonitor(double tenant_quota_ru)
      : tenant_quota_(tenant_quota_ru) {}

  /// Ingests one monitoring interval's aggregate RU/s across all proxies
  /// and returns the clamp directive to broadcast.
  bool ObserveAggregateRuPerSec(double aggregate_ru_per_sec) {
    clamped_ = aggregate_ru_per_sec > tenant_quota_;
    return clamped_;
  }

  void SetTenantQuota(double tenant_quota_ru) { tenant_quota_ = tenant_quota_ru; }
  double tenant_quota() const { return tenant_quota_; }
  bool clamped() const { return clamped_; }

 private:
  double tenant_quota_;
  bool clamped_ = false;
};

}  // namespace quota
}  // namespace abase
