// Predictive autoscaler — paper Section 5.1, Algorithm 1.
//
// Forecasts the next 7 days of resource usage from a 30-day hourly
// history and scales the tenant quota so that predicted usage stays
// between the 0.65 and 0.85 utilization thresholds:
//   Umax > 0.85 * QT             → scale up to QT' = Umax / 0.65
//                                   (split partitions if QP > UP)
//   Umax < 0.65 * QT (7d cooldown) → scale down to QT' = Umax / 0.65
//                                   (partition quota floored at LOWER)
// A reactive baseline (threshold-on-current-usage) is provided for the
// Figure 8b oncall ablation.
#pragma once

#include <cstdint>

#include "common/clock.h"
#include "common/time_series.h"
#include "common/types.h"
#include "forecast/ensemble.h"

namespace abase {
namespace autoscale {

/// Algorithm 1 thresholds.
struct ScalingPolicy {
  double upper_threshold = 0.85;
  double lower_threshold = 0.65;
  double target_utilization = 0.65;  ///< QT' = Umax / target.
  Micros scale_down_cooldown = 7ll * kMicrosPerDay;
  size_t forecast_horizon_hours = 7 * 24;
  size_t history_hours = 30 * 24;
};

/// What the policy decided for one tenant+resource.
struct ScalingDecision {
  enum class Action { kNone, kScaleUp, kScaleDown };
  Action action = Action::kNone;
  double old_quota = 0;
  double new_quota = 0;
  double forecast_max = 0;
  bool partition_split = false;  ///< QP exceeded UP after scale-up.
  forecast::ForecastResult forecast;
};

/// Stateless Algorithm 1 evaluator; the caller owns quota application
/// (MetaServer::SetTenantQuota performs the split).
class Autoscaler {
 public:
  Autoscaler(ScalingPolicy policy, forecast::EnsembleOptions forecast_options)
      : policy_(policy), forecast_options_(forecast_options) {}
  explicit Autoscaler(ScalingPolicy policy = {})
      : Autoscaler(policy, forecast::EnsembleOptions{}) {}

  /// Runs the policy for one tenant resource dimension.
  ///  `usage`: hourly usage history (RU/s or bytes);
  ///  `quota_series`: matching hourly quota records (for denoising; may be
  ///   empty);
  ///  `current_quota`, `num_partitions`, `partition_quota_upper/lower`:
  ///   Algorithm 1 inputs;
  ///  `last_scale_down`: clock time of the previous down-scale (-1 =
  ///   never) for the 7-day cooldown;
  ///  `now`: current time.
  Result<ScalingDecision> Decide(const TimeSeries& usage,
                                 const TimeSeries& quota_series,
                                 double current_quota, uint32_t num_partitions,
                                 double partition_quota_upper,
                                 double partition_quota_lower,
                                 Micros last_scale_down, Micros now) const;

  const ScalingPolicy& policy() const { return policy_; }

 private:
  ScalingPolicy policy_;
  forecast::EnsembleOptions forecast_options_;
};

/// Reactive baseline for the Figure 8b ablation: scales up only after
/// current usage crosses the threshold (i.e., after users already felt
/// pressure), never proactively.
struct ReactiveScaler {
  double upper_threshold = 0.9;
  double target_utilization = 0.65;

  ScalingDecision Decide(double current_usage, double current_quota) const {
    ScalingDecision d;
    d.old_quota = current_quota;
    d.new_quota = current_quota;
    if (current_usage > upper_threshold * current_quota) {
      d.action = ScalingDecision::Action::kScaleUp;
      d.new_quota = current_usage / target_utilization;
    }
    return d;
  }
};

}  // namespace autoscale
}  // namespace abase
