#include "autoscale/autoscaler.h"

#include <algorithm>

namespace abase {
namespace autoscale {

Result<ScalingDecision> Autoscaler::Decide(
    const TimeSeries& usage, const TimeSeries& quota_series,
    double current_quota, uint32_t num_partitions,
    double partition_quota_upper, double partition_quota_lower,
    Micros last_scale_down, Micros now) const {
  if (current_quota <= 0 || num_partitions == 0) {
    return Status::InvalidArgument("bad quota/partition inputs");
  }

  // Forecast Umax over the next 7 days from the trailing 30-day window.
  TimeSeries window = usage.Tail(policy_.history_hours);
  TimeSeries quota_window = quota_series.size() == usage.size()
                                ? quota_series.Tail(policy_.history_hours)
                                : TimeSeries();
  auto fc = forecast::EnsembleForecast(window, quota_window,
                                       policy_.forecast_horizon_hours,
                                       forecast_options_);
  ABASE_RETURN_IF_ERROR(fc.status());
  const double u_max = fc.value().predicted_max;

  ScalingDecision d;
  d.forecast = std::move(fc).value();
  d.forecast_max = u_max;
  d.old_quota = current_quota;
  d.new_quota = current_quota;

  if (u_max > policy_.upper_threshold * current_quota) {
    // Algorithm 1 lines 1-6: scale up; split if QP exceeds UP.
    d.action = ScalingDecision::Action::kScaleUp;
    d.new_quota = u_max / policy_.target_utilization;
    double qp = d.new_quota / static_cast<double>(num_partitions);
    d.partition_split = qp > partition_quota_upper;
  } else if (u_max < policy_.lower_threshold * current_quota) {
    // Algorithm 1 lines 7-10: scale down with a 7-day cooldown; keep the
    // partition quota at or above LOWER for burst headroom.
    bool cooled_down = last_scale_down < 0 ||
                       now - last_scale_down >= policy_.scale_down_cooldown;
    if (cooled_down) {
      d.action = ScalingDecision::Action::kScaleDown;
      double target = u_max / policy_.target_utilization;
      double floor_quota =
          partition_quota_lower * static_cast<double>(num_partitions);
      d.new_quota = std::max(target, floor_quota);
      if (d.new_quota >= current_quota) {
        d.action = ScalingDecision::Action::kNone;  // Floor negates it.
        d.new_quota = current_quota;
      }
    }
  }
  return d;
}

}  // namespace autoscale
}  // namespace abase
