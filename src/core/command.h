// Typed command / reply values of the public asynchronous API.
//
// A Command is one Redis-style operation as the application states it —
// op, key, and whichever of field/value/ttl the op uses — built through
// the named constructors below instead of a stringly Call(op, key, field,
// value, ttl) funnel. A Reply is the delivered outcome: status, payload,
// and the simulated-time interval the command spent in flight.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/keyspace.h"
#include "common/scan_codec.h"
#include "common/status.h"
#include "common/types.h"

namespace abase {

/// One client operation, ready to Submit. Construct through the factory
/// methods; fields are public so scenario code can tweak a prototype.
struct Command {
  OpType op = OpType::kGet;
  std::string key;
  std::string field;  ///< Hash ops: the field. Scans: exclusive end key.
  std::string value;  ///< Writes only.
  Micros ttl = 0;     ///< Set / Expire only.
  /// Scans only: maximum entries returned across the whole range.
  uint32_t scan_limit = 0;
  /// Read routing preference (reads only; writes always hit the
  /// primary). kPrimary pins the read to the partition's primary —
  /// read-your-writes. kEventual lets the cluster balance the read
  /// across any alive replica: lower primary load and availability
  /// through a primary outage, at the cost of replies trailing the
  /// primary by up to the configured replication lag.
  Consistency consistency = Consistency::kPrimary;

  /// Returns this command with eventual (replica-read) consistency.
  Command&& Eventual() && {
    consistency = Consistency::kEventual;
    return std::move(*this);
  }

  static Command Get(std::string key) {
    return Command{OpType::kGet, std::move(key), "", "", 0};
  }

  /// GET routed to any alive replica (shorthand for
  /// Get(key).Eventual()).
  static Command GetEventual(std::string key) {
    Command c = Get(std::move(key));
    c.consistency = Consistency::kEventual;
    return c;
  }
  static Command Set(std::string key, std::string value, Micros ttl = 0) {
    return Command{OpType::kSet, std::move(key), "", std::move(value), ttl};
  }
  static Command Del(std::string key) {
    return Command{OpType::kDel, std::move(key), "", "", 0};
  }
  static Command HSet(std::string key, std::string field, std::string value) {
    return Command{OpType::kHSet, std::move(key), std::move(field),
                   std::move(value), 0};
  }
  static Command HGet(std::string key, std::string field) {
    return Command{OpType::kHGet, std::move(key), std::move(field), "", 0};
  }
  static Command HGetAll(std::string key) {
    return Command{OpType::kHGetAll, std::move(key), "", "", 0};
  }
  static Command HLen(std::string key) {
    return Command{OpType::kHLen, std::move(key), "", "", 0};
  }
  static Command Expire(std::string key, Micros ttl) {
    return Command{OpType::kExpire, std::move(key), "", "", ttl};
  }

  /// SCAN over [start, end): at most `limit` visible entries in key
  /// order, merged across every partition of the tenant. An empty `end`
  /// scans to the last key. Scans always read the primaries (a
  /// cross-partition merge of mixed-staleness replicas would not be a
  /// consistent range view), so consistency stays kPrimary.
  static Command Scan(std::string start, std::string end,
                      uint32_t limit = 100) {
    Command c{OpType::kScan, std::move(start), std::move(end), "", 0};
    c.scan_limit = limit;
    return c;
  }

  /// SCAN of every key starting with `prefix` (the [prefix,
  /// PrefixUpperBound(prefix)) range).
  static Command ScanPrefix(std::string prefix, uint32_t limit = 100) {
    std::string end = PrefixUpperBound(prefix);
    return Scan(std::move(prefix), std::move(end), limit);
  }
};

/// The delivered outcome of a Command.
struct Reply {
  Status status;
  std::string value;     ///< Read payload ("" for writes and errors).
  Micros issued_at = 0;     ///< Simulated time at Submit.
  Micros completed_at = 0;  ///< Simulated time when the outcome settled.
  /// In-flight duration counted in ticks, computed at resolution using
  /// the simulation's configured tick length; a command resolved within
  /// the tick after its submission took 1 tick (the clock advances at
  /// the end of each tick, after outcomes settle).
  uint64_t latency_ticks = 0;
  /// Sub-tick data-plane latency in micros (service time + queueing +
  /// network hop), from the timed Settle path. 0 when the request never
  /// reached the data plane (proxy cache hit, throttle) or when the
  /// latency subsystem is disabled — fall back to LatencyTicks() then.
  Micros latency_micros = 0;

  bool ok() const { return status.ok(); }

  /// Simulated time spent in flight.
  Micros latency() const { return completed_at - issued_at; }

  uint64_t LatencyTicks() const { return latency_ticks; }

  Micros LatencyMicros() const { return latency_micros; }

  /// Decodes a SCAN reply's framed payload (common/scan_codec.h) into
  /// (key, value) pairs, in key order. Empty for non-scan replies.
  std::vector<std::pair<std::string, std::string>> ScanEntries() const {
    std::vector<std::pair<std::string, std::string>> out;
    std::string_view rest(value);
    ScanEntryView e;
    while (NextScanEntry(rest, e)) {
      out.emplace_back(std::string(e.key), std::string(e.value));
    }
    return out;
  }
};

}  // namespace abase
