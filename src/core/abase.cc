#include "core/abase.h"

namespace abase {

Cluster::Cluster(ClusterOptions options)
    : options_(options),
      sim_(options.sim),
      autoscaler_(options.scaling),
      rescheduler_(options.resched) {}

PoolId Cluster::CreatePool(size_t num_nodes) {
  return sim_.AddPool(num_nodes);
}

Status Cluster::CreateTenant(const meta::TenantConfig& config, PoolId pool,
                             proxy::RoutingMode mode) {
  return sim_.AddTenant(config, pool, mode);
}

Client Cluster::OpenClient(TenantId tenant) { return Client(this, tenant); }

void Cluster::AttachWorkload(TenantId tenant,
                             const sim::WorkloadProfile& profile) {
  sim_.SetWorkload(tenant, profile);
}

size_t Cluster::RunRescheduling(PoolId pool) {
  resched::PoolModel model = sim_.BuildPoolModel(pool);
  auto migrations = rescheduler_.Run(&model);
  return sim_.ApplyMigrations(migrations);
}

Result<autoscale::ScalingDecision> Cluster::RunAutoscaler(
    TenantId tenant, const TimeSeries& usage_history) {
  const meta::TenantMeta* meta = sim_.meta().GetTenant(tenant);
  if (meta == nullptr) return Status::NotFound("no such tenant");
  auto decision = autoscaler_.Decide(
      usage_history, TimeSeries(), meta->tenant_quota_ru,
      static_cast<uint32_t>(meta->partitions.size()),
      meta->config.partition_quota_upper, meta->config.partition_quota_lower,
      meta->last_scale_down, sim_.clock().NowMicros());
  ABASE_RETURN_IF_ERROR(decision.status());
  if (decision.value().action != autoscale::ScalingDecision::Action::kNone) {
    ABASE_RETURN_IF_ERROR(
        sim_.meta().SetTenantQuota(tenant, decision.value().new_quota));
  }
  return decision;
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

Client::Client(Cluster* cluster, TenantId tenant)
    : cluster_(cluster), tenant_(tenant) {
  // Distinct id space per tenant, away from workload-generated ids.
  next_req_id_ = (static_cast<uint64_t>(tenant) << 40) | (1ull << 39);
}

Client::CallResult Client::Call(OpType op, const std::string& key,
                                const std::string& field,
                                const std::string& value, Micros ttl) {
  ClientRequest req;
  req.req_id = next_req_id_++;
  req.tenant = tenant_;
  req.op = op;
  req.key = key;
  req.field = field;
  req.value = value;
  req.ttl = ttl;
  req.issued_at = cluster_->sim().clock().NowMicros();
  req.track_outcome = true;
  cluster_->sim().InjectRequest(req);

  // A request completes within a few ticks unless the node defers it
  // under load; 64 ticks is far beyond any sane backlog for a
  // synchronous client.
  for (int i = 0; i < 64; i++) {
    cluster_->sim().Tick();
    if (auto out = cluster_->sim().TakeOutcome(req.req_id)) {
      return CallResult{out->status, std::move(out->value)};
    }
  }
  return CallResult{Status::Internal("request lost in simulation"), ""};
}

Status Client::Set(const std::string& key, const std::string& value,
                   Micros ttl) {
  return Call(OpType::kSet, key, "", value, ttl).status;
}

Result<std::string> Client::Get(const std::string& key) {
  CallResult r = Call(OpType::kGet, key, "", "", 0);
  if (!r.status.ok()) return r.status;
  return std::move(r.value);
}

std::vector<Result<std::string>> Client::MGet(
    const std::vector<std::string>& keys) {
  // Inject the whole batch before ticking, so the limited fan-out router
  // spreads it across proxy groups within one round.
  std::vector<uint64_t> ids;
  ids.reserve(keys.size());
  for (const std::string& key : keys) {
    ClientRequest req;
    req.req_id = next_req_id_++;
    req.tenant = tenant_;
    req.op = OpType::kGet;
    req.key = key;
    req.issued_at = cluster_->sim().clock().NowMicros();
    req.track_outcome = true;
    cluster_->sim().InjectRequest(req);
    ids.push_back(req.req_id);
  }

  std::vector<Result<std::string>> results(
      keys.size(), Result<std::string>(Status::Internal("pending")));
  size_t resolved = 0;
  for (int tick = 0; tick < 64 && resolved < keys.size(); tick++) {
    cluster_->sim().Tick();
    for (size_t i = 0; i < ids.size(); i++) {
      if (auto out = cluster_->sim().TakeOutcome(ids[i])) {
        results[i] = out->status.ok()
                         ? Result<std::string>(std::move(out->value))
                         : Result<std::string>(out->status);
        resolved++;
      }
    }
  }
  return results;
}

std::vector<Status> Client::MSet(
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  std::vector<uint64_t> ids;
  ids.reserve(pairs.size());
  for (const auto& [key, value] : pairs) {
    ClientRequest req;
    req.req_id = next_req_id_++;
    req.tenant = tenant_;
    req.op = OpType::kSet;
    req.key = key;
    req.value = value;
    req.issued_at = cluster_->sim().clock().NowMicros();
    req.track_outcome = true;
    cluster_->sim().InjectRequest(req);
    ids.push_back(req.req_id);
  }
  std::vector<Status> results(pairs.size(), Status::Internal("pending"));
  size_t resolved = 0;
  for (int tick = 0; tick < 64 && resolved < pairs.size(); tick++) {
    cluster_->sim().Tick();
    for (size_t i = 0; i < ids.size(); i++) {
      if (results[i].code() == StatusCode::kInternal) {
        if (auto out = cluster_->sim().TakeOutcome(ids[i])) {
          results[i] = out->status;
          resolved++;
        }
      }
    }
  }
  return results;
}

Status Client::Del(const std::string& key) {
  return Call(OpType::kDel, key, "", "", 0).status;
}

Status Client::HSet(const std::string& key, const std::string& field,
                    const std::string& value) {
  return Call(OpType::kHSet, key, field, value, 0).status;
}

Result<std::string> Client::HGet(const std::string& key,
                                 const std::string& field) {
  CallResult r = Call(OpType::kHGet, key, field, "", 0);
  if (!r.status.ok()) return r.status;
  return std::move(r.value);
}

Result<std::string> Client::HGetAll(const std::string& key) {
  CallResult r = Call(OpType::kHGetAll, key, "", "", 0);
  if (!r.status.ok()) return r.status;
  return std::move(r.value);
}

Result<uint64_t> Client::HLen(const std::string& key) {
  CallResult r = Call(OpType::kHLen, key, "", "", 0);
  if (!r.status.ok()) return r.status;
  return static_cast<uint64_t>(std::stoull(r.value));
}

Status Client::Expire(const std::string& key, Micros ttl) {
  return Call(OpType::kExpire, key, "", "", ttl).status;
}

}  // namespace abase
