#include "core/abase.h"

namespace abase {

Cluster::Cluster(ClusterOptions options)
    : options_(options),
      sim_(options.sim),
      autoscaler_(options.scaling),
      rescheduler_(options.resched) {}

PoolId Cluster::CreatePool(size_t num_nodes) {
  return sim_.AddPool(num_nodes);
}

Status Cluster::CreateTenant(const meta::TenantConfig& config, PoolId pool,
                             proxy::RoutingMode mode) {
  return sim_.AddTenant(config, pool, mode);
}

Client Cluster::OpenClient(TenantId tenant) {
  return Client(this, tenant, next_client_slot_[tenant]++);
}

void Cluster::AttachWorkload(TenantId tenant,
                             const sim::WorkloadProfile& profile) {
  sim_.SetWorkload(tenant, profile);
}

// ---------------------------------------------------------------------------
// Completion model
// ---------------------------------------------------------------------------

Future<Reply> Cluster::SubmitRequest(ClientRequest req) {
  req.track_outcome = true;
  req.issued_at = sim_.clock().NowMicros();
  const Micros issued = req.issued_at;

  Promise<Reply> promise;
  Future<Reply> future = promise.future();
  pending_commands_++;
  sim_.SubscribeOutcome(
      req.req_id,
      [this, promise, issued](uint64_t, sim::ClientOutcome out) mutable {
        Reply reply;
        reply.status = std::move(out.status);
        reply.value = std::move(out.value);
        reply.latency_micros = out.latency_micros;
        reply.issued_at = issued;
        // The clock advances after outcomes settle, so this is the start
        // time of the tick that completed the command.
        reply.completed_at = sim_.clock().NowMicros();
        const Micros tick_len = sim_.options().tick;
        reply.latency_ticks =
            tick_len <= 0 ? 0
                          : static_cast<uint64_t>(reply.latency() / tick_len) +
                                1;
        promise.Set(std::move(reply));
        pending_commands_--;
        resolved_in_step_++;
      });
  sim_.InjectRequest(req);
  return future;
}

void Cluster::AbandonPending(uint64_t req_id) {
  if (sim_.UnsubscribeOutcome(req_id)) pending_commands_--;
}

size_t Cluster::Step() {
  resolved_in_step_ = 0;
  sim_.Tick();
  return resolved_in_step_;
}

size_t Cluster::Drain(size_t max_ticks) {
  size_t ticks = 0;
  while (pending_commands_ > 0 && ticks < max_ticks) {
    Step();
    ticks++;
  }
  return ticks;
}

// ---------------------------------------------------------------------------
// Operations
// ---------------------------------------------------------------------------

size_t Cluster::RunRescheduling(PoolId pool) {
  resched::PoolModel model = sim_.BuildPoolModel(pool);
  auto migrations = rescheduler_.Run(&model);
  size_t applied = 0;
  for (const auto& outcome : sim_.ApplyMigrations(migrations)) {
    if (outcome.status.ok()) applied++;
  }
  return applied;
}

Result<autoscale::ScalingDecision> Cluster::RunAutoscaler(
    TenantId tenant, const TimeSeries& usage_history) {
  const meta::TenantMeta* meta = sim_.meta().GetTenant(tenant);
  if (meta == nullptr) return Status::NotFound("no such tenant");
  auto decision = autoscaler_.Decide(
      usage_history, TimeSeries(), meta->tenant_quota_ru,
      static_cast<uint32_t>(meta->partitions.size()),
      meta->config.partition_quota_upper, meta->config.partition_quota_lower,
      meta->last_scale_down, sim_.clock().NowMicros());
  ABASE_RETURN_IF_ERROR(decision.status());
  if (decision.value().action != autoscale::ScalingDecision::Action::kNone) {
    ABASE_RETURN_IF_ERROR(
        sim_.meta().SetTenantQuota(tenant, decision.value().new_quota));
  }
  return decision;
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

namespace {

// Session request-id sub-space layout (DESIGN.md "Request id spaces"):
// bits [40..) tenant, bit 39 the client-space flag, bits [28..39) the
// cluster-allocated session slot, bits [0..28) the per-session sequence.
constexpr int kClientSeqBits = 28;
constexpr int kClientSlotBits = 11;
constexpr uint64_t kClientSpaceFlag = 1ull << 39;

/// A synchronous adapter gives up after this many ticks; a request
/// completes within a few unless the node defers it under load, so this
/// is far beyond any sane backlog.
constexpr int kSyncDrainTicks = 64;

}  // namespace

Client::Client(Cluster* cluster, TenantId tenant, uint64_t session_slot)
    : cluster_(cluster), tenant_(tenant), next_seq_(1) {
  const uint64_t slot = session_slot & ((1ull << kClientSlotBits) - 1);
  id_base_ = (static_cast<uint64_t>(tenant) << 40) | kClientSpaceFlag |
             (slot << kClientSeqBits);
}

uint64_t Client::NextRequestId() {
  return id_base_ | (next_seq_++ & ((1ull << kClientSeqBits) - 1));
}

Client::Pending Client::SubmitPending(Command cmd) {
  ClientRequest req;
  req.req_id = NextRequestId();
  req.tenant = tenant_;
  req.op = cmd.op;
  req.key = std::move(cmd.key);
  req.field = std::move(cmd.field);
  req.value = std::move(cmd.value);
  req.ttl = cmd.ttl;
  req.scan_limit = cmd.scan_limit;
  req.consistency = cmd.consistency;

  Pending p;
  p.req_id = req.req_id;
  p.future = cluster_->SubmitRequest(std::move(req));
  return p;
}

std::vector<Client::Pending> Client::SubmitPendingBatch(
    std::vector<Command> cmds) {
  std::vector<Pending> pending;
  pending.reserve(cmds.size());
  for (Command& cmd : cmds) {
    pending.push_back(SubmitPending(std::move(cmd)));
  }
  return pending;
}

Future<Reply> Client::Submit(Command cmd) {
  return SubmitPending(std::move(cmd)).future;
}

std::vector<Future<Reply>> Client::SubmitBatch(std::vector<Command> cmds) {
  std::vector<Pending> pending = SubmitPendingBatch(std::move(cmds));
  std::vector<Future<Reply>> futures;
  futures.reserve(pending.size());
  for (Pending& p : pending) futures.push_back(std::move(p.future));
  return futures;
}

Reply Client::Await(const Pending& p) {
  for (int i = 0; i < kSyncDrainTicks && !p.future.ready(); i++) {
    cluster_->Step();
  }
  if (p.future.ready()) return p.future.value();
  cluster_->AbandonPending(p.req_id);
  Reply reply;
  reply.status = Status::Internal("request lost in simulation");
  return reply;
}

std::vector<Reply> Client::AwaitAll(const std::vector<Pending>& pending) {
  auto any_unresolved = [&pending] {
    for (const Pending& p : pending) {
      if (!p.future.ready()) return true;
    }
    return false;
  };
  for (int i = 0; i < kSyncDrainTicks && any_unresolved(); i++) {
    cluster_->Step();
  }
  std::vector<Reply> replies;
  replies.reserve(pending.size());
  for (const Pending& p : pending) {
    if (p.future.ready()) {
      replies.push_back(p.future.value());
    } else {
      cluster_->AbandonPending(p.req_id);
      Reply reply;
      reply.status = Status::Internal("request lost in simulation");
      replies.push_back(std::move(reply));
    }
  }
  return replies;
}

// ---------------------------------------------------------------------------
// Synchronous adapters
// ---------------------------------------------------------------------------

Status Client::Set(const std::string& key, const std::string& value,
                   Micros ttl) {
  return Await(SubmitPending(Command::Set(key, value, ttl))).status;
}

Result<std::string> Client::Get(const std::string& key) {
  Reply r = Await(SubmitPending(Command::Get(key)));
  if (!r.ok()) return r.status;
  return std::move(r.value);
}

std::vector<Result<std::string>> Client::MGet(
    const std::vector<std::string>& keys) {
  // One batched submission (see header): the whole batch is admitted
  // together and probes the nodes through the MultiFind grouped path.
  std::vector<Command> cmds;
  cmds.reserve(keys.size());
  for (const std::string& key : keys) cmds.push_back(Command::Get(key));
  std::vector<Pending> pending = SubmitPendingBatch(std::move(cmds));
  std::vector<Reply> replies = AwaitAll(pending);
  std::vector<Result<std::string>> results;
  results.reserve(replies.size());
  for (Reply& r : replies) {
    results.push_back(r.ok() ? Result<std::string>(std::move(r.value))
                             : Result<std::string>(r.status));
  }
  return results;
}

std::vector<Status> Client::MSet(
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  // Same batched-submission path as MGet: every write is injected
  // before any tick runs, so the batch is admitted in one ProxyAdmit
  // pass (one write-invalidation broadcast per key, one quota pass)
  // instead of interleaving submissions with drains.
  std::vector<Command> cmds;
  cmds.reserve(pairs.size());
  for (const auto& [key, value] : pairs) {
    cmds.push_back(Command::Set(key, value));
  }
  std::vector<Pending> pending = SubmitPendingBatch(std::move(cmds));
  std::vector<Reply> replies = AwaitAll(pending);
  std::vector<Status> results;
  results.reserve(replies.size());
  for (Reply& r : replies) results.push_back(std::move(r.status));
  return results;
}

Status Client::Del(const std::string& key) {
  return Await(SubmitPending(Command::Del(key))).status;
}

std::vector<Status> Client::MDel(const std::vector<std::string>& keys) {
  std::vector<Command> cmds;
  cmds.reserve(keys.size());
  for (const std::string& key : keys) cmds.push_back(Command::Del(key));
  std::vector<Pending> pending = SubmitPendingBatch(std::move(cmds));
  std::vector<Reply> replies = AwaitAll(pending);
  std::vector<Status> results;
  results.reserve(replies.size());
  for (Reply& r : replies) results.push_back(std::move(r.status));
  return results;
}

Status Client::HSet(const std::string& key, const std::string& field,
                    const std::string& value) {
  return Await(SubmitPending(Command::HSet(key, field, value))).status;
}

Result<std::string> Client::HGet(const std::string& key,
                                 const std::string& field) {
  Reply r = Await(SubmitPending(Command::HGet(key, field)));
  if (!r.ok()) return r.status;
  return std::move(r.value);
}

Result<std::string> Client::HGetAll(const std::string& key) {
  Reply r = Await(SubmitPending(Command::HGetAll(key)));
  if (!r.ok()) return r.status;
  return std::move(r.value);
}

Result<uint64_t> Client::HLen(const std::string& key) {
  Reply r = Await(SubmitPending(Command::HLen(key)));
  if (!r.ok()) return r.status;
  return static_cast<uint64_t>(std::stoull(r.value));
}

Status Client::Expire(const std::string& key, Micros ttl) {
  return Await(SubmitPending(Command::Expire(key, ttl))).status;
}

Result<std::vector<std::pair<std::string, std::string>>> Client::Scan(
    const std::string& start, const std::string& end, uint32_t limit) {
  Reply r = Await(SubmitPending(Command::Scan(start, end, limit)));
  if (!r.ok()) return r.status;
  return r.ScanEntries();
}

Result<std::vector<std::pair<std::string, std::string>>> Client::ScanPrefix(
    const std::string& prefix, uint32_t limit) {
  Reply r = Await(SubmitPending(Command::ScanPrefix(prefix, limit)));
  if (!r.ok()) return r.status;
  return r.ScanEntries();
}

}  // namespace abase
