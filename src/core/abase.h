// Public entry point of the ABase library.
//
// abase::Cluster assembles the full system — control plane (MetaServer,
// Autoscaler, Rescheduler), data plane (resource pools of DataNodes), and
// proxy plane (per-tenant proxy fleets with limited fan-out routing) — on
// top of the deterministic simulator substrate. abase::Client offers a
// synchronous Redis-style command API against one tenant, which is how the
// examples and the quickstart exercise the system.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "autoscale/autoscaler.h"
#include "common/status.h"
#include "common/types.h"
#include "meta/meta_server.h"
#include "resched/rescheduler.h"
#include "sim/cluster_sim.h"

namespace abase {

/// Cluster construction options.
struct ClusterOptions {
  sim::SimOptions sim;
  autoscale::ScalingPolicy scaling;
  resched::ReschedOptions resched;
};

class Client;

/// A full ABase deployment.
class Cluster {
 public:
  explicit Cluster(ClusterOptions options = {});

  /// Creates a resource pool of `num_nodes` DataNodes.
  PoolId CreatePool(size_t num_nodes);

  /// Creates a tenant in `pool`; its proxies use limited fan-out routing.
  Status CreateTenant(const meta::TenantConfig& config, PoolId pool,
                      proxy::RoutingMode mode =
                          proxy::RoutingMode::kLimitedFanout);

  /// Synchronous client bound to one tenant.
  Client OpenClient(TenantId tenant);

  /// Attaches a synthetic workload (for load experiments alongside
  /// client usage).
  void AttachWorkload(TenantId tenant, const sim::WorkloadProfile& profile);

  /// Advances simulated time by `n` one-second ticks.
  void RunTicks(size_t n) { sim_.RunTicks(n); }

  /// Runs one intra-pool rescheduling round against live node loads and
  /// applies the resulting migrations. Returns the number applied.
  size_t RunRescheduling(PoolId pool);

  /// Runs the predictive autoscaler for one tenant given an hourly usage
  /// history (RU/s) and applies any quota change through the MetaServer.
  Result<autoscale::ScalingDecision> RunAutoscaler(
      TenantId tenant, const TimeSeries& usage_history);

  sim::ClusterSim& sim() { return sim_; }
  meta::MetaServer& meta() { return sim_.meta(); }

 private:
  ClusterOptions options_;
  sim::ClusterSim sim_;
  autoscale::Autoscaler autoscaler_;
  resched::IntraPoolRescheduler rescheduler_;
};

/// Synchronous Redis-style command interface for one tenant. Each call
/// injects a request and advances the simulation until its response
/// arrives (at most a few ticks).
class Client {
 public:
  Client(Cluster* cluster, TenantId tenant);

  Status Set(const std::string& key, const std::string& value,
             Micros ttl = 0);
  Result<std::string> Get(const std::string& key);

  /// Batched GET (the paper's "list of requests" path): all keys are
  /// injected together, each hash-routed to its proxy group, and the
  /// per-key results returned in input order.
  std::vector<Result<std::string>> MGet(const std::vector<std::string>& keys);

  /// Batched SET; per-key statuses in input order.
  std::vector<Status> MSet(
      const std::vector<std::pair<std::string, std::string>>& pairs);
  Status Del(const std::string& key);
  Status HSet(const std::string& key, const std::string& field,
              const std::string& value);
  Result<std::string> HGet(const std::string& key, const std::string& field);
  Result<std::string> HGetAll(const std::string& key);
  Result<uint64_t> HLen(const std::string& key);
  Status Expire(const std::string& key, Micros ttl);

  TenantId tenant() const { return tenant_; }

 private:
  struct CallResult {
    Status status;
    std::string value;
  };
  CallResult Call(OpType op, const std::string& key,
                  const std::string& field, const std::string& value,
                  Micros ttl);

  Cluster* cluster_;
  TenantId tenant_;
  uint64_t next_req_id_;
};

}  // namespace abase
