// Public entry point of the ABase library.
//
// abase::Cluster assembles the full system — control plane (MetaServer,
// Autoscaler, Rescheduler), data plane (resource pools of DataNodes), and
// proxy plane (per-tenant proxy fleets with limited fan-out routing) — on
// top of the deterministic simulator substrate.
//
// The client surface is asynchronous at its core: abase::Client turns
// typed Commands into Future<Reply> handles without advancing simulated
// time, and Cluster::Step() / Drain() run ticks and resolve futures as
// outcomes settle. Any number of clients can keep any number of commands
// in flight across the one shared simulation; the classic synchronous
// Redis-style methods (Get, Set, MGet, ...) remain as thin
// submit-then-drain adapters on top.
//
//   Client a = cluster.OpenClient(1), b = cluster.OpenClient(2);
//   auto f1 = a.Submit(Command::Set("k", "v"));
//   auto batch = b.SubmitBatch({Command::Get("x"), Command::Get("y")});
//   cluster.Drain();              // ticks until every future resolves
//   if (f1.ready() && f1->ok()) { ... }
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "autoscale/autoscaler.h"
#include "common/status.h"
#include "common/types.h"
#include "core/command.h"
#include "core/future.h"
#include "meta/meta_server.h"
#include "resched/rescheduler.h"
#include "sim/cluster_sim.h"

namespace abase {

/// Cluster construction options.
struct ClusterOptions {
  sim::SimOptions sim;
  autoscale::ScalingPolicy scaling;
  resched::ReschedOptions resched;
};

class Client;

/// A full ABase deployment.
///
/// Completion model: submitted commands resolve only while simulated time
/// advances — through Step()/Drain() (or RunTicks, which also settles
/// outcomes). All resolution happens on the calling thread, in
/// deterministic order (see DESIGN.md "Asynchronous command API").
class Cluster {
 public:
  explicit Cluster(ClusterOptions options = {});

  /// Outcome subscriptions capture `this`; moving the cluster would
  /// dangle them.
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Creates a resource pool of `num_nodes` DataNodes.
  PoolId CreatePool(size_t num_nodes);

  /// Creates a tenant in `pool`; its proxies use limited fan-out routing.
  Status CreateTenant(const meta::TenantConfig& config, PoolId pool,
                      proxy::RoutingMode mode =
                          proxy::RoutingMode::kLimitedFanout);

  /// Opens a client session bound to one tenant. Each session draws its
  /// request ids from a cluster-allocated sub-space, so any number of
  /// concurrent sessions (up to 2^11 per tenant before slots wrap) share
  /// the in-flight tables without collision.
  Client OpenClient(TenantId tenant);

  /// Attaches a synthetic workload (for load experiments alongside
  /// client usage).
  void AttachWorkload(TenantId tenant, const sim::WorkloadProfile& profile);

  // -- Completion model ------------------------------------------------------

  /// Advances one tick and resolves the futures whose outcomes settled
  /// during it. Returns the number of futures resolved.
  size_t Step();

  /// Steps until every submitted command has resolved, up to `max_ticks`.
  /// Returns the number of ticks run. Commands still pending afterwards
  /// (wedged beyond any sane backlog) remain pending; PendingCommands()
  /// tells how many.
  size_t Drain(size_t max_ticks = 1024);

  /// Commands submitted whose futures have not yet resolved.
  size_t PendingCommands() const { return pending_commands_; }

  /// Advances simulated time by `n` one-second ticks (also resolves
  /// pending futures, like Step, without reporting counts).
  void RunTicks(size_t n) { sim_.RunTicks(n); }

  // -- Fault injection --------------------------------------------------------

  /// Crashes a DataNode, effective at the next tick boundary: queued and
  /// in-flight work on it resolves Unavailable, and after the configured
  /// failure-detection delay surviving replicas are promoted to primary
  /// (clients see a redirect-and-retry blip in TenantTickMetrics).
  void FailNode(NodeId node) { sim_.FailNode(node); }

  /// Starts WAL-replay recovery of a failed node. It spends
  /// `catch_up_ticks` (< 0 = SimOptions::recovery_catch_up_ticks)
  /// catching up, then rejoins and takes back the primaries it led.
  void RecoverNode(NodeId node, int catch_up_ticks = -1) {
    sim_.RecoverNode(node, catch_up_ticks);
  }

  /// Current routing-table version (bumped by every placement change).
  uint64_t RoutingEpoch() { return sim_.meta().routing_epoch(); }

  // -- Operations ------------------------------------------------------------

  /// Runs one intra-pool rescheduling round against live node loads and
  /// applies the resulting migrations. Returns the number applied.
  size_t RunRescheduling(PoolId pool);

  /// Runs the predictive autoscaler for one tenant given an hourly usage
  /// history (RU/s) and applies any quota change through the MetaServer.
  Result<autoscale::ScalingDecision> RunAutoscaler(
      TenantId tenant, const TimeSeries& usage_history);

  sim::ClusterSim& sim() { return sim_; }
  meta::MetaServer& meta() { return sim_.meta(); }

 private:
  friend class Client;

  /// Registers a completion subscription for `req` and injects it ahead
  /// of the next tick. The shared async core under Client::Submit.
  Future<Reply> SubmitRequest(ClientRequest req);

  /// Abandons a still-pending command (sync adapters time out after a
  /// bounded number of ticks). No-op if it already resolved.
  void AbandonPending(uint64_t req_id);

  ClusterOptions options_;
  sim::ClusterSim sim_;
  autoscale::Autoscaler autoscaler_;
  resched::IntraPoolRescheduler rescheduler_;
  /// Next client-session slot per tenant (id sub-space allocation).
  std::map<TenantId, uint64_t> next_client_slot_;
  size_t pending_commands_ = 0;
  size_t resolved_in_step_ = 0;
};

/// A client session bound to one tenant.
///
/// The core is asynchronous: Submit/SubmitBatch enqueue typed Commands
/// and return Future<Reply> handles without advancing time; the cluster's
/// Step()/Drain() resolve them. The synchronous Redis-style methods are
/// adapters that submit and then drain until their own futures resolve —
/// each such call advances the shared simulation by at least one tick,
/// exactly like the historical lock-step client.
///
/// Sessions are movable but not copyable: a copy would clone the id
/// cursor and two cursors over one sub-space collide in the shared
/// in-flight tables. Use OpenClient for independent sessions.
class Client {
 public:
  Client(Cluster* cluster, TenantId tenant, uint64_t session_slot);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  // -- Asynchronous core -----------------------------------------------------

  /// Enqueues one command for the next tick; never advances time.
  Future<Reply> Submit(Command cmd);

  /// Enqueues a batch (the paper's "list of requests" path): all commands
  /// are injected together, so the limited fan-out router spreads them
  /// across proxy groups within one round. Futures in input order.
  std::vector<Future<Reply>> SubmitBatch(std::vector<Command> cmds);

  // -- Synchronous adapters --------------------------------------------------

  Status Set(const std::string& key, const std::string& value,
             Micros ttl = 0);
  Result<std::string> Get(const std::string& key);

  /// Batched GET; per-key results in input order. One batched
  /// submission: every key is injected before any tick runs, so the
  /// whole batch lands in one ProxyAdmit pass and the destination nodes
  /// probe the grouped point reads through the MultiFind morsel path
  /// instead of N independent lookups.
  std::vector<Result<std::string>> MGet(const std::vector<std::string>& keys);

  /// Batched SET; per-key statuses in input order. One batched
  /// submission, like MGet: the whole batch is admitted in a single
  /// ProxyAdmit pass.
  std::vector<Status> MSet(
      const std::vector<std::pair<std::string, std::string>>& pairs);
  Status Del(const std::string& key);
  /// Batched DEL; per-key statuses in input order. Same batched
  /// submission path as MSet.
  std::vector<Status> MDel(const std::vector<std::string>& keys);
  Status HSet(const std::string& key, const std::string& field,
              const std::string& value);
  Result<std::string> HGet(const std::string& key, const std::string& field);
  Result<std::string> HGetAll(const std::string& key);
  Result<uint64_t> HLen(const std::string& key);
  Status Expire(const std::string& key, Micros ttl);

  /// SCAN over [start, end): up to `limit` entries in key order, merged
  /// across every partition (empty `end` = to the last key). Decoded
  /// (key, value) pairs; async callers use Submit(Command::Scan(...))
  /// and Reply::ScanEntries() instead.
  Result<std::vector<std::pair<std::string, std::string>>> Scan(
      const std::string& start, const std::string& end, uint32_t limit = 100);

  /// SCAN of every key starting with `prefix`. Prefix-shaped scans are
  /// the cacheable form: repeats can be served from the proxy's
  /// prefix-tree content store without touching the data plane.
  Result<std::vector<std::pair<std::string, std::string>>> ScanPrefix(
      const std::string& prefix, uint32_t limit = 100);

  TenantId tenant() const { return tenant_; }

 private:
  /// A submitted command: its id (for abandonment) plus its future.
  struct Pending {
    uint64_t req_id = 0;
    Future<Reply> future;
  };

  /// Allocates the next id in this session's sub-space.
  uint64_t NextRequestId();

  Pending SubmitPending(Command cmd);

  /// The batched-submission core under SubmitBatch, MGet, MSet and
  /// MDel: all commands are injected before any tick can run, so the
  /// batch is admitted in one ProxyAdmit pass and point reads reach
  /// the nodes' MultiFind grouped probe together.
  std::vector<Pending> SubmitPendingBatch(std::vector<Command> cmds);

  /// Drains until `p` resolves (bounded); Internal error on timeout.
  Reply Await(const Pending& p);

  /// Drains until all of `pending` resolve (bounded); unresolved entries
  /// get an Internal-error Reply.
  std::vector<Reply> AwaitAll(const std::vector<Pending>& pending);

  Cluster* cluster_;
  TenantId tenant_;
  uint64_t id_base_;  ///< This session's id sub-space (see DESIGN.md).
  uint64_t next_seq_;
};

}  // namespace abase
