// Single-threaded Future/Promise pair for the asynchronous command API.
//
// A Future<T> is a handle to a value that the cluster will produce while
// ticks settle: abase::Client::Submit returns one per command, and
// Cluster::Step() / Drain() resolve them as outcomes are published by the
// simulation's Settle path. Resolution always happens on the thread that
// advances the simulation (there is no cross-thread hand-off and hence no
// locking); copies of a Future share one state, so any copy observes the
// resolution.
#pragma once

#include <cassert>
#include <memory>
#include <optional>
#include <utility>

namespace abase {

template <typename T>
class Promise;

namespace detail {
template <typename T>
struct FutureState {
  std::optional<T> value;
};
}  // namespace detail

/// A handle to a not-yet-delivered command outcome. Default-constructed
/// futures are invalid (no producer); futures obtained from
/// Client::Submit / Promise::future become ready exactly once.
template <typename T>
class Future {
 public:
  Future() = default;

  /// True if this future is attached to a producer.
  bool valid() const { return state_ != nullptr; }

  /// True once the value has been delivered.
  bool ready() const { return state_ != nullptr && state_->value.has_value(); }

  /// The delivered value. Calling before ready() is a programming error.
  const T& value() const {
    assert(ready());
    return *state_->value;
  }
  const T& operator*() const { return value(); }
  const T* operator->() const { return &value(); }

  /// Moves the value out (the future stays ready; the value is consumed).
  T take() {
    assert(ready());
    return std::move(*state_->value);
  }

 private:
  friend class Promise<T>;
  explicit Future(std::shared_ptr<detail::FutureState<T>> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::FutureState<T>> state_;
};

/// The producing side. The Cluster holds one Promise per in-flight
/// command inside its outcome subscription and calls Set exactly once.
template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<detail::FutureState<T>>()) {}

  Future<T> future() const { return Future<T>(state_); }

  void Set(T value) {
    assert(!state_->value.has_value() && "promise resolved twice");
    state_->value.emplace(std::move(value));
  }

 private:
  std::shared_ptr<detail::FutureState<T>> state_;
};

}  // namespace abase
