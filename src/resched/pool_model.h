// Abstract load model the rescheduler operates on — paper Section 5.3
// "Load Indicator" and "Optimal Load".
//
// Replica loads are 24-slot hour-of-day vectors (hourly averages over the
// past 7 days, aggregated by max within each hour-of-day). A node's load
// is the max over hours of the sum of its replicas' vectors; a pool's
// optimal load <R, S> is its total load divided by its total capacity,
// per resource dimension.
//
// The model is deliberately decoupled from live DataNodes so the same
// algorithm runs offline (Figure 9: 1000 synthetic nodes) and online
// (Figure 10: applied to the simulator every 10 minutes).
#pragma once

#include <cstdint>
#include <vector>

#include "common/time_series.h"
#include "common/types.h"

namespace abase {
namespace resched {

/// The two balanced resource dimensions.
enum class Resource { kRu = 0, kStorage = 1 };

/// One replica's load contribution.
struct ReplicaLoad {
  TenantId tenant = 0;
  PartitionId partition = 0;
  uint32_t replica_index = 0;
  /// Pinned replicas contribute load but must not be migrated (e.g. a
  /// staged split child still receiving its stream): the reschedulers
  /// never select them as move candidates, and a node hosting one
  /// cannot be vacated.
  bool pinned = false;
  LoadVector ru;       ///< RU load (already cache-hit weighted).
  LoadVector storage;  ///< Storage footprint per hour-of-day.
};

/// A node in the rescheduling model.
class NodeModel {
 public:
  NodeModel(NodeId id, double ru_capacity, double storage_capacity)
      : id_(id), ru_capacity_(ru_capacity), storage_capacity_(storage_capacity) {}

  NodeId id() const { return id_; }
  double capacity(Resource r) const {
    return r == Resource::kRu ? ru_capacity_ : storage_capacity_;
  }

  void AddReplica(ReplicaLoad replica);
  /// Removes by (tenant, partition, replica_index); returns the removed
  /// load or NotFound.
  Result<ReplicaLoad> RemoveReplica(TenantId tenant, PartitionId partition,
                                    uint32_t replica_index);

  bool HasReplicaOf(TenantId tenant, PartitionId partition) const;
  size_t ReplicaCountOfTenant(TenantId tenant) const;

  const std::vector<ReplicaLoad>& replicas() const { return replicas_; }

  /// Node load for one resource: max over hours of summed replica loads.
  double Load(Resource r) const {
    return (r == Resource::kRu ? ru_sum_ : storage_sum_).MaxLoad();
  }
  /// Normalized load (utilization) in [0, 1+].
  double Utilization(Resource r) const { return Load(r) / capacity(r); }

  /// Utilization if `replica` were added / removed (no mutation).
  double UtilizationWith(Resource r, const ReplicaLoad& replica) const;
  double UtilizationWithout(Resource r, const ReplicaLoad& replica) const;

  /// L2 deviation from the pool optimal (paper's L(DN)), over both dims.
  double Deviation(double optimal_ru, double optimal_storage) const;
  /// Deviation after a hypothetical add / remove of `replica`.
  double DeviationWith(const ReplicaLoad& replica, double optimal_ru,
                       double optimal_storage) const;
  double DeviationWithout(const ReplicaLoad& replica, double optimal_ru,
                          double optimal_storage) const;

  bool is_migrating = false;  ///< Algorithm 2's IsMigrating flag.

 private:
  NodeId id_;
  double ru_capacity_;
  double storage_capacity_;
  std::vector<ReplicaLoad> replicas_;
  LoadVector ru_sum_;
  LoadVector storage_sum_;
};

/// A resource pool of NodeModels.
class PoolModel {
 public:
  PoolModel() = default;

  NodeModel& AddNode(NodeId id, double ru_capacity, double storage_capacity) {
    nodes_.emplace_back(id, ru_capacity, storage_capacity);
    return nodes_.back();
  }

  std::vector<NodeModel>& nodes() { return nodes_; }
  const std::vector<NodeModel>& nodes() const { return nodes_; }

  NodeModel* FindNode(NodeId id);

  /// Pool optimal load <R, S>: total load / total capacity per dimension.
  double OptimalLoad(Resource r) const;

  /// Stddev of per-node utilization for one resource (Figure 9 metric).
  double UtilizationStddev(Resource r) const;

  /// Max and mean node utilization (Figure 10 metrics).
  double MaxUtilization(Resource r) const;
  double MeanUtilization(Resource r) const;

  size_t TotalReplicaCount() const;
  /// Total replicas of one tenant across the pool.
  size_t TenantReplicaCount(TenantId tenant) const;

  void ClearMigrationFlags();

 private:
  std::vector<NodeModel> nodes_;
};

}  // namespace resched
}  // namespace abase
