// Multi-resource rescheduling — paper Section 5.3, Algorithm 2.
//
// Intra-pool: two phases. Phase 1 balances each tenant's replica count
// across nodes (elasticity / failure robustness); phase 2 balances RU and
// storage utilization, migrating replicas from high-load nodes (S_H) to
// low-load nodes (S_L) whenever the migration gain
//   G = max[L(src), L(dst)] - max[L(src - RE), L(dst + RE)]
// is positive, where L is the node's L2 deviation from the pool optimal
// <R, S>.
//
// Inter-pool: vacates low-utilization nodes from the lightly-loaded pool
// (migrating their replicas to pool siblings), reassigns the vacated
// nodes to the heavily-loaded pool, and re-runs intra-pool on both.
#pragma once

#include <cstddef>
#include <vector>

#include "resched/pool_model.h"

namespace abase {
namespace resched {

/// Tuning knobs.
struct ReschedOptions {
  /// Division threshold theta: S_L below R - theta, S_M in (R - theta, R],
  /// S_H above (paper suggests 5%).
  double theta = 0.05;
  /// Phase-2 passes per Run() call (each pass migrates at most one replica
  /// per high-load node, mirroring the 10-minute production cadence).
  size_t max_passes = 1;
  /// Tenant replica-count slack tolerated by CanPlace: a node may hold at
  /// most ceil(tenant replicas / nodes) + slack replicas of one tenant.
  size_t tenant_balance_slack = 1;
};

/// One planned replica move.
struct Migration {
  TenantId tenant = 0;
  PartitionId partition = 0;
  uint32_t replica_index = 0;
  NodeId from = 0;
  NodeId to = 0;
  double gain = 0;
  Resource driving_resource = Resource::kRu;
};

/// The S_L / S_M / S_H division of a pool for one resource.
struct NodeDivision {
  std::vector<NodeId> low, medium, high;
};

/// Divides pool nodes by load level relative to the optimal (paper's
/// "DataNode Division").
NodeDivision DivideNodes(const PoolModel& pool, Resource resource,
                         double theta);

/// Intra-pool rescheduler (Algorithm 2). Mutates the model in place and
/// returns the executed migrations.
class IntraPoolRescheduler {
 public:
  explicit IntraPoolRescheduler(ReschedOptions options = {})
      : options_(options) {}

  /// Phase 1: balance each tenant's replica count across nodes.
  std::vector<Migration> BalanceReplicaCounts(PoolModel* pool) const;

  /// Phase 2: Algorithm 2 over [RU, Storage]. One call = one scheduling
  /// round (migration flags are cleared at entry, set by each move).
  std::vector<Migration> Run(PoolModel* pool) const;

  /// Runs Run() repeatedly until no migration is found or `max_rounds`
  /// rounds elapse. Returns all migrations (offline mode, Figure 9).
  std::vector<Migration> RunToConvergence(PoolModel* pool,
                                          size_t max_rounds = 200) const;

  const ReschedOptions& options() const { return options_; }

 private:
  /// Paper's CanPlace: no duplicate replica of the same partition,
  /// tenant-count balance preserved, and the destination must not be
  /// pushed into S_H.
  bool CanPlace(const PoolModel& pool, const NodeModel& dst,
                const ReplicaLoad& replica, double optimal_ru,
                double optimal_storage) const;

  ReschedOptions options_;
};

/// Result of one inter-pool rebalancing step.
struct InterPoolResult {
  std::vector<NodeId> reassigned_nodes;  ///< Moved from donor to receiver.
  std::vector<Migration> vacate_migrations;  ///< Within the donor pool.
  std::vector<Migration> rebalance_migrations;  ///< Post-move, both pools.
};

/// Inter-pool rescheduler: moves whole nodes from the lightly-loaded pool
/// to the heavily-loaded one (paper's extension of Algorithm 2).
class InterPoolRescheduler {
 public:
  explicit InterPoolRescheduler(ReschedOptions options = {})
      : options_(options), intra_(options) {}

  /// Rebalances `donor` (lower load) against `receiver` (higher load),
  /// moving up to `max_nodes` vacated nodes. Pool identities are the
  /// caller's; this only mutates the two models.
  InterPoolResult Run(PoolModel* donor, PoolModel* receiver,
                      size_t max_nodes = 1) const;

 private:
  ReschedOptions options_;
  IntraPoolRescheduler intra_;
};

}  // namespace resched
}  // namespace abase
