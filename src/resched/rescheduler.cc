#include "resched/rescheduler.h"

#include <algorithm>
#include <cmath>

namespace abase {
namespace resched {

NodeDivision DivideNodes(const PoolModel& pool, Resource resource,
                         double theta) {
  NodeDivision div;
  double optimal = pool.OptimalLoad(resource);
  for (const NodeModel& n : pool.nodes()) {
    double u = n.Utilization(resource);
    if (u <= optimal - theta) {
      div.low.push_back(n.id());
    } else if (u <= optimal) {
      div.medium.push_back(n.id());
    } else {
      div.high.push_back(n.id());
    }
  }
  return div;
}

bool IntraPoolRescheduler::CanPlace(const PoolModel& pool,
                                    const NodeModel& dst,
                                    const ReplicaLoad& replica,
                                    double optimal_ru,
                                    double optimal_storage) const {
  // Replica safety: never co-locate two replicas of the same partition.
  if (dst.HasReplicaOf(replica.tenant, replica.partition)) return false;

  // Tenant replica-count balance: the move must not concentrate one
  // tenant's replicas on this node.
  size_t tenant_total = pool.TenantReplicaCount(replica.tenant);
  size_t fair = (tenant_total + pool.nodes().size() - 1) /
                std::max<size_t>(1, pool.nodes().size());
  if (dst.ReplicaCountOfTenant(replica.tenant) + 1 >
      fair + options_.tenant_balance_slack) {
    return false;
  }

  // The destination must not itself be pushed into the high-load set:
  // post-move utilization may reach at most optimal + theta on either
  // resource (theta is the same division slack as S_L/S_M/S_H).
  if (dst.UtilizationWith(Resource::kRu, replica) >
      optimal_ru + options_.theta) {
    return false;
  }
  if (dst.UtilizationWith(Resource::kStorage, replica) >
      optimal_storage + options_.theta) {
    return false;
  }
  return true;
}

std::vector<Migration> IntraPoolRescheduler::Run(PoolModel* pool) const {
  std::vector<Migration> executed;
  pool->ClearMigrationFlags();

  const double opt_ru = pool->OptimalLoad(Resource::kRu);
  const double opt_sto = pool->OptimalLoad(Resource::kStorage);

  for (Resource resource : {Resource::kRu, Resource::kStorage}) {
    NodeDivision div = DivideNodes(*pool, resource, options_.theta);

    for (NodeId src_id : div.high) {
      NodeModel* src = pool->FindNode(src_id);
      if (src == nullptr || src->is_migrating) continue;

      // Find the (replica, destination) pair with the best gain.
      double best_gain = 0;
      const ReplicaLoad* best_replica = nullptr;
      NodeModel* best_dst = nullptr;

      for (const ReplicaLoad& re : src->replicas()) {
        if (re.pinned) continue;  // Mid-stream (split) replicas stay put.
        for (NodeId dst_id : div.low) {
          NodeModel* dst = pool->FindNode(dst_id);
          if (dst == nullptr || dst->is_migrating) continue;
          if (!CanPlace(*pool, *dst, re, opt_ru, opt_sto)) continue;

          // Migration gain: reduction of the max L2 deviation across the
          // two nodes (paper's G).
          double before = std::max(src->Deviation(opt_ru, opt_sto),
                                   dst->Deviation(opt_ru, opt_sto));
          double after =
              std::max(src->DeviationWithout(re, opt_ru, opt_sto),
                       dst->DeviationWith(re, opt_ru, opt_sto));
          double gain = before - after;
          if (gain > best_gain) {
            best_gain = gain;
            best_replica = &re;
            best_dst = dst;
          }
        }
      }

      if (best_gain > 0 && best_replica != nullptr && best_dst != nullptr) {
        Migration m;
        m.tenant = best_replica->tenant;
        m.partition = best_replica->partition;
        m.replica_index = best_replica->replica_index;
        m.from = src->id();
        m.to = best_dst->id();
        m.gain = best_gain;
        m.driving_resource = resource;
        auto moved =
            src->RemoveReplica(m.tenant, m.partition, m.replica_index);
        if (moved.ok()) {
          best_dst->AddReplica(std::move(moved).value());
          src->is_migrating = true;
          best_dst->is_migrating = true;
          executed.push_back(m);
        }
      }
    }
  }
  return executed;
}

std::vector<Migration> IntraPoolRescheduler::RunToConvergence(
    PoolModel* pool, size_t max_rounds) const {
  std::vector<Migration> all;
  for (size_t round = 0; round < max_rounds; round++) {
    auto moves = Run(pool);
    if (moves.empty()) break;
    all.insert(all.end(), moves.begin(), moves.end());
  }
  return all;
}

std::vector<Migration> IntraPoolRescheduler::BalanceReplicaCounts(
    PoolModel* pool) const {
  std::vector<Migration> executed;
  if (pool->nodes().empty()) return executed;

  // For each tenant, move replicas from over-count to under-count nodes
  // using the same gain-guarded heuristic skeleton as phase 2.
  std::vector<TenantId> tenants;
  for (const NodeModel& n : pool->nodes()) {
    for (const ReplicaLoad& r : n.replicas()) {
      if (std::find(tenants.begin(), tenants.end(), r.tenant) ==
          tenants.end()) {
        tenants.push_back(r.tenant);
      }
    }
  }

  const double opt_ru = pool->OptimalLoad(Resource::kRu);
  const double opt_sto = pool->OptimalLoad(Resource::kStorage);

  for (TenantId tenant : tenants) {
    size_t total = pool->TenantReplicaCount(tenant);
    size_t fair = (total + pool->nodes().size() - 1) / pool->nodes().size();

    bool moved = true;
    while (moved) {
      moved = false;
      // Most-loaded node for this tenant above fair share.
      NodeModel* src = nullptr;
      for (NodeModel& n : pool->nodes()) {
        if (n.ReplicaCountOfTenant(tenant) > fair &&
            (src == nullptr || n.ReplicaCountOfTenant(tenant) >
                                   src->ReplicaCountOfTenant(tenant))) {
          src = &n;
        }
      }
      if (src == nullptr) break;
      // Least-loaded placeable destination.
      NodeModel* dst = nullptr;
      const ReplicaLoad* re = nullptr;
      for (const ReplicaLoad& candidate : src->replicas()) {
        if (candidate.tenant != tenant || candidate.pinned) continue;
        for (NodeModel& n : pool->nodes()) {
          if (&n == src) continue;
          if (n.ReplicaCountOfTenant(tenant) + 1 >=
              src->ReplicaCountOfTenant(tenant)) {
            continue;  // Would not improve the balance.
          }
          if (n.HasReplicaOf(tenant, candidate.partition)) continue;
          if (dst == nullptr || n.ReplicaCountOfTenant(tenant) <
                                    dst->ReplicaCountOfTenant(tenant)) {
            dst = &n;
            re = &candidate;
          }
        }
        if (dst != nullptr) break;
      }
      if (dst == nullptr || re == nullptr) break;

      Migration m;
      m.tenant = re->tenant;
      m.partition = re->partition;
      m.replica_index = re->replica_index;
      m.from = src->id();
      m.to = dst->id();
      m.gain = std::max(src->Deviation(opt_ru, opt_sto),
                        dst->Deviation(opt_ru, opt_sto));
      auto taken = src->RemoveReplica(m.tenant, m.partition, m.replica_index);
      if (!taken.ok()) break;
      dst->AddReplica(std::move(taken).value());
      executed.push_back(m);
      moved = true;
    }
  }
  return executed;
}

InterPoolResult InterPoolRescheduler::Run(PoolModel* donor,
                                          PoolModel* receiver,
                                          size_t max_nodes) const {
  InterPoolResult result;

  for (size_t moved = 0; moved < max_nodes; moved++) {
    // Pick the donor's least-utilized node (combined deviation below the
    // donor optimal on both dimensions).
    NodeModel* victim = nullptr;
    double victim_util = 0;
    for (NodeModel& n : donor->nodes()) {
      double u = n.Utilization(Resource::kRu) +
                 n.Utilization(Resource::kStorage);
      if (victim == nullptr || u < victim_util) {
        victim = &n;
        victim_util = u;
      }
    }
    if (victim == nullptr || donor->nodes().size() <= 1) break;

    // Vacate: migrate every replica to a placeable donor sibling.
    const double opt_ru = donor->OptimalLoad(Resource::kRu);
    const double opt_sto = donor->OptimalLoad(Resource::kStorage);
    bool vacated = true;
    std::vector<ReplicaLoad> to_move = victim->replicas();
    for (const ReplicaLoad& re : to_move) {
      if (re.pinned) {
        vacated = false;  // A mid-stream replica makes the node sticky.
        break;
      }
      NodeModel* dst = nullptr;
      double best_dev = 0;
      for (NodeModel& n : donor->nodes()) {
        if (&n == victim) continue;
        if (n.HasReplicaOf(re.tenant, re.partition)) continue;
        double dev = n.DeviationWith(re, opt_ru, opt_sto);
        if (dst == nullptr || dev < best_dev) {
          dst = &n;
          best_dev = dev;
        }
      }
      if (dst == nullptr) {
        vacated = false;
        break;
      }
      Migration m;
      m.tenant = re.tenant;
      m.partition = re.partition;
      m.replica_index = re.replica_index;
      m.from = victim->id();
      m.to = dst->id();
      m.driving_resource = Resource::kRu;
      auto taken = victim->RemoveReplica(m.tenant, m.partition,
                                         m.replica_index);
      if (!taken.ok()) {
        vacated = false;
        break;
      }
      dst->AddReplica(std::move(taken).value());
      result.vacate_migrations.push_back(m);
    }
    if (!vacated) break;

    // Reassign the empty node to the receiver pool.
    NodeId vid = victim->id();
    double ru_cap = victim->capacity(Resource::kRu);
    double sto_cap = victim->capacity(Resource::kStorage);
    auto& dn = donor->nodes();
    dn.erase(std::remove_if(dn.begin(), dn.end(),
                            [&](const NodeModel& n) { return n.id() == vid; }),
             dn.end());
    receiver->AddNode(vid, ru_cap, sto_cap);
    result.reassigned_nodes.push_back(vid);
  }

  // Re-balance both pools.
  auto a = intra_.RunToConvergence(receiver);
  auto b = intra_.RunToConvergence(donor);
  result.rebalance_migrations.insert(result.rebalance_migrations.end(),
                                     a.begin(), a.end());
  result.rebalance_migrations.insert(result.rebalance_migrations.end(),
                                     b.begin(), b.end());
  return result;
}

}  // namespace resched
}  // namespace abase
