#include "resched/pool_model.h"

#include <algorithm>
#include <cmath>

namespace abase {
namespace resched {

void NodeModel::AddReplica(ReplicaLoad replica) {
  ru_sum_ += replica.ru;
  storage_sum_ += replica.storage;
  replicas_.push_back(std::move(replica));
}

Result<ReplicaLoad> NodeModel::RemoveReplica(TenantId tenant,
                                             PartitionId partition,
                                             uint32_t replica_index) {
  for (size_t i = 0; i < replicas_.size(); i++) {
    const ReplicaLoad& r = replicas_[i];
    if (r.tenant == tenant && r.partition == partition &&
        r.replica_index == replica_index) {
      ReplicaLoad out = replicas_[i];
      ru_sum_ -= out.ru;
      storage_sum_ -= out.storage;
      replicas_.erase(replicas_.begin() + static_cast<ptrdiff_t>(i));
      return out;
    }
  }
  return Status::NotFound("replica not on node");
}

bool NodeModel::HasReplicaOf(TenantId tenant, PartitionId partition) const {
  for (const ReplicaLoad& r : replicas_) {
    if (r.tenant == tenant && r.partition == partition) return true;
  }
  return false;
}

size_t NodeModel::ReplicaCountOfTenant(TenantId tenant) const {
  size_t n = 0;
  for (const ReplicaLoad& r : replicas_) {
    if (r.tenant == tenant) n++;
  }
  return n;
}

double NodeModel::UtilizationWith(Resource r, const ReplicaLoad& replica) const {
  LoadVector sum = (r == Resource::kRu ? ru_sum_ : storage_sum_);
  sum += (r == Resource::kRu ? replica.ru : replica.storage);
  return sum.MaxLoad() / capacity(r);
}

double NodeModel::UtilizationWithout(Resource r,
                                     const ReplicaLoad& replica) const {
  LoadVector sum = (r == Resource::kRu ? ru_sum_ : storage_sum_);
  sum -= (r == Resource::kRu ? replica.ru : replica.storage);
  return sum.MaxLoad() / capacity(r);
}

double NodeModel::Deviation(double optimal_ru, double optimal_storage) const {
  double dr = Utilization(Resource::kRu) - optimal_ru;
  double ds = Utilization(Resource::kStorage) - optimal_storage;
  return std::sqrt(dr * dr + ds * ds);
}

double NodeModel::DeviationWith(const ReplicaLoad& replica, double optimal_ru,
                                double optimal_storage) const {
  double dr = UtilizationWith(Resource::kRu, replica) - optimal_ru;
  double ds = UtilizationWith(Resource::kStorage, replica) - optimal_storage;
  return std::sqrt(dr * dr + ds * ds);
}

double NodeModel::DeviationWithout(const ReplicaLoad& replica,
                                   double optimal_ru,
                                   double optimal_storage) const {
  double dr = UtilizationWithout(Resource::kRu, replica) - optimal_ru;
  double ds =
      UtilizationWithout(Resource::kStorage, replica) - optimal_storage;
  return std::sqrt(dr * dr + ds * ds);
}

NodeModel* PoolModel::FindNode(NodeId id) {
  for (NodeModel& n : nodes_) {
    if (n.id() == id) return &n;
  }
  return nullptr;
}

double PoolModel::OptimalLoad(Resource r) const {
  double load = 0, cap = 0;
  for (const NodeModel& n : nodes_) {
    load += n.Load(r);
    cap += n.capacity(r);
  }
  return cap > 0 ? load / cap : 0;
}

double PoolModel::UtilizationStddev(Resource r) const {
  if (nodes_.size() < 2) return 0;
  double mean = MeanUtilization(r);
  double acc = 0;
  for (const NodeModel& n : nodes_) {
    double d = n.Utilization(r) - mean;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(nodes_.size() - 1));
}

double PoolModel::MaxUtilization(Resource r) const {
  double m = 0;
  for (const NodeModel& n : nodes_) m = std::max(m, n.Utilization(r));
  return m;
}

double PoolModel::MeanUtilization(Resource r) const {
  if (nodes_.empty()) return 0;
  double acc = 0;
  for (const NodeModel& n : nodes_) acc += n.Utilization(r);
  return acc / static_cast<double>(nodes_.size());
}

size_t PoolModel::TotalReplicaCount() const {
  size_t n = 0;
  for (const NodeModel& node : nodes_) n += node.replicas().size();
  return n;
}

size_t PoolModel::TenantReplicaCount(TenantId tenant) const {
  size_t n = 0;
  for (const NodeModel& node : nodes_) n += node.ReplicaCountOfTenant(tenant);
  return n;
}

void PoolModel::ClearMigrationFlags() {
  for (NodeModel& n : nodes_) n.is_migrating = false;
}

}  // namespace resched
}  // namespace abase
