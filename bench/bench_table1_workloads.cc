// Table 1 reproduction: "Diverse application scenarios and workload
// characteristics of ABase in ByteDance business."
//
// Seven tenant profiles mirroring the paper's business lines run against
// one resource pool; the harness reports the same columns the paper does
// (normalized throughput, normalized storage, cache hit ratio, read
// ratio, mean K-V size, TTL). Absolute scale is the simulator's, but the
// *relationships* — which workloads are throughput- vs storage-heavy,
// whose hit ratios are high vs near zero — should match the paper.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "sim/cluster_sim.h"

using namespace abase;

namespace {

struct BusinessLine {
  const char* name;
  const char* workload;
  sim::WorkloadProfile profile;
  const char* ttl_label;
};

std::vector<BusinessLine> MakeBusinessLines() {
  // QPS values are the paper's normalized throughputs scaled to
  // simulator size (x1 normalized = 2 QPS here); storage follows from
  // value sizes and key counts.
  std::vector<BusinessLine> lines;

  {  // Social Media (Douyin) - Comment: tiny values, all reads, warm.
    sim::WorkloadProfile p;
    p.base_qps = 500;  // normalized 250
    p.read_ratio = 1.0;
    p.num_keys = 120000;
    p.zipf_theta = 0.85;
    p.value_bytes = 100;  // 0.1 KB
    lines.push_back({"SocialMedia(Douyin)", "Comment", p, "-"});
  }
  {  // Social Media - Direct message: low traffic, big storage.
    sim::WorkloadProfile p;
    p.base_qps = 50;  // normalized 25
    p.read_ratio = 1.0;
    p.num_keys = 64000;
    p.zipf_theta = 0.92;
    p.value_bytes = 1024;  // 1 KB
    lines.push_back({"SocialMedia(Douyin)", "Direct message", p, "-"});
  }
  {  // E-Commerce - Metadata tags: hot reads, high hit ratio.
    sim::WorkloadProfile p;
    p.base_qps = 1150;  // normalized 575
    p.read_ratio = 1.0;
    p.num_keys = 8000;
    p.zipf_theta = 0.95;
    p.value_bytes = 1024;
    lines.push_back({"E-Commerce", "Metadata tags", p, "-"});
  }
  {  // Search - Forward sorted data: hottest reads, ~99% hits.
    sim::WorkloadProfile p;
    p.base_qps = 3000;  // normalized 1500
    p.read_ratio = 1.0;
    p.num_keys = 4000;
    p.zipf_theta = 0.99;
    p.value_bytes = 1024;
    lines.push_back({"Search", "Forward sorted data", p, "-"});
  }
  {  // Advertisement - message joiner: write-heavy, read-once, TTL 3h.
    sim::WorkloadProfile p;
    p.base_qps = 5500;  // normalized 2750
    p.read_ratio = 0.25;
    p.num_keys = 4000000;  // Most data read at most once.
    p.key_dist = sim::KeyDist::kUniform;
    p.value_bytes = 10240;  // 10 KB
    p.ttl = 3 * kMicrosPerHour;
    lines.push_back({"Advertisement", "For message joiner", p, "3 hours"});
  }
  {  // Recommendation - deduplication: balanced, TTL 15 days.
    sim::WorkloadProfile p;
    p.base_qps = 10650;  // normalized 5325
    p.read_ratio = 0.5;
    p.num_keys = 300000;
    p.zipf_theta = 0.9;
    p.value_bytes = 2048;  // 2 KB
    p.ttl = 15 * kMicrosPerDay;
    lines.push_back({"Recommendation", "For deduplication", p, "15 days"});
  }
  {  // LLM - remote KV cache: huge values, bypasses caching.
    sim::WorkloadProfile p;
    p.base_qps = 1000;  // normalized 10000 (scaled down for value size).
    p.read_ratio = 0.85;
    p.num_keys = 8000;
    p.key_dist = sim::KeyDist::kUniform;  // Token prefixes rarely repeat.
    p.value_bytes = 64 * 1024;  // Scaled stand-in for 5 MB payloads.
    p.value_sigma = 0.1;
    p.ttl = 1 * kMicrosPerDay;
    lines.push_back({"LargeLanguageModel", "Remote K-V Cache", p, "1 days"});
  }
  return lines;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Table 1: Diverse application scenarios and workload characteristics");

  auto lines = MakeBusinessLines();

  sim::SimOptions opts;
  opts.node.wfq.cpu_budget_ru = 500000;  // Ample capacity: measure shape.
  opts.node.cache.capacity_bytes = 24ull << 20;
  opts.node.disk.read_iops_capacity = 2e6;
  opts.proxy.cache.capacity_bytes = 2ull << 20;
  sim::ClusterSim cluster(opts);
  PoolId pool = cluster.AddPool(8);

  for (size_t i = 0; i < lines.size(); i++) {
    meta::TenantConfig cfg;
    cfg.id = static_cast<TenantId>(i + 1);
    cfg.name = lines[i].workload;
    cfg.tenant_quota_ru = 4e6;  // No throttling in this experiment.
    cfg.num_partitions = 8;
    cfg.num_proxies = 4;
    cfg.num_proxy_groups = 2;
    if (cluster.AddTenant(cfg, pool).ok()) {
      // LLM bypasses the proxy cache by design (paper: cache ratio 0).
      if (std::string(lines[i].name) == "LargeLanguageModel") {
        cluster.SetProxyCacheEnabled(cfg.id, false);
      }
      cluster.SetWorkload(cfg.id, lines[i].profile);
      // Read-heavy tenants come with an existing dataset; write-heavy
      // pipelines (Advertisement) populate their own keys.
      if (lines[i].profile.read_ratio >= 0.5) {
        bench::PreloadTenant(cluster, cfg.id, lines[i].profile.num_keys,
                             lines[i].profile.value_bytes,
                             lines[i].profile.value_sigma);
      }
    }
  }

  const size_t kWarmup = 40, kMeasure = 40;
  cluster.RunTicks(kWarmup + kMeasure);

  std::printf(
      "%-22s %-20s %10s %10s %9s %8s %10s %10s\n", "Business line",
      "Workload", "NormThru", "NormStor", "CacheHit", "ReadPct", "MeanKV(B)",
      "TTL");
  std::printf(
      "%-22s %-20s %10s %10s %9s %8s %10s %10s\n", "(paper order)", "",
      "(meas.)", "(meas.)", "(meas.)", "(meas.)", "(meas.)", "(cfg)");

  // Normalization unit: the smallest tenant's throughput/storage, like
  // the paper's "empirical standard unit".
  std::vector<bench::WindowStats> stats;
  std::vector<double> storage(lines.size(), 0);
  for (size_t i = 0; i < lines.size(); i++) {
    TenantId id = static_cast<TenantId>(i + 1);
    stats.push_back(
        bench::Aggregate(cluster, id, kWarmup, kWarmup + kMeasure));
    // Storage: sum the tenant's primary replica footprints.
    double bytes = 0;
    for (const auto& n : cluster.nodes()) {
      for (const auto* rep : n->Replicas()) {
        if (rep->tenant == id && rep->is_primary) {
          bytes += static_cast<double>(rep->engine->ApproximateDataBytes());
        }
      }
    }
    storage[i] = bytes;
  }
  double thr_unit = 1e18, sto_unit = 1e18;
  for (size_t i = 0; i < lines.size(); i++) {
    if (stats[i].success_qps > 1) thr_unit = std::min(thr_unit, stats[i].success_qps);
    if (storage[i] > 1) sto_unit = std::min(sto_unit, storage[i]);
  }

  for (size_t i = 0; i < lines.size(); i++) {
    const auto* rt = cluster.Tenant(static_cast<TenantId>(i + 1));
    double mean_kv =
        rt != nullptr && rt->value_bytes_count > 0
            ? static_cast<double>(rt->value_bytes_sum) /
                  static_cast<double>(rt->value_bytes_count)
            : 0;
    std::printf("%-22s %-20s %10.0f %10.0f %8.0f%% %7.0f%% %10.0f %10s\n",
                lines[i].name, lines[i].workload,
                stats[i].success_qps / thr_unit * 25,
                storage[i] / sto_unit * 125, stats[i].cache_hit_ratio * 100,
                stats[i].read_ratio * 100, mean_kv, lines[i].ttl_label);
  }

  std::printf(
      "\nShape checks vs paper Table 1:\n"
      " - Search/E-Commerce cache hit ratios should be the highest (>90%% "
      "paper).\n"
      " - Advertisement hit ratio should be the lowest of cached tenants "
      "(18%% paper) - read-once pattern.\n"
      " - LLM hit ratio ~0 (cache bypassed by design).\n"
      " - Direct message: lowest throughput but storage-heavy.\n");
  return 0;
}
