// Figure 8 reproduction: predictive autoscaling.
//
// (a) A scaling case: disk usage with 24-hour periodicity and an upward
//     trend; on day 10 the forecaster predicts usage will breach 85% of
//     quota within a week and raises the quota so predicted usage stays
//     below 65%. The harness prints the usage/quota/forecast series.
//
// (b) Oncall reduction: six simulated months of many tenants with
//     drifting workloads, comparing weekly throttling "oncalls" under
//     reactive scaling vs ABase's predictive policy. The paper reports
//     ~65% fewer oncalls after deployment.
#include <cstdio>
#include <vector>

#include "autoscale/autoscaler.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "sim/workload.h"

using namespace abase;

namespace {

// ---- Figure 8a -----------------------------------------------------------

void RunScalingCase() {
  std::printf("\nFigure 8a: a scaling case (disk usage, 21 days)\n");

  // 24h-periodic disk usage with a rising trend (the paper's search
  // business example).
  sim::SeriesSpec spec;
  spec.hours = 21 * 24;
  spec.base = 500;
  spec.trend_per_day = 22;
  spec.seasons.push_back({24, 60});
  spec.noise_sigma = 8;
  Rng rng(42);
  TimeSeries usage = sim::GenerateSeries(spec, rng);

  autoscale::ScalingPolicy policy;
  policy.history_hours = 30 * 24;
  autoscale::Autoscaler scaler(policy);

  double quota = 1100;  // Initial tenant storage quota.
  std::printf("%6s %12s %12s %14s %10s\n", "day", "usage(avg)", "quota",
              "forecastMax", "action");

  size_t scaled_on_day = 0;
  for (size_t day = 7; day <= 21; day++) {
    TimeSeries history(std::vector<double>(
        usage.values().begin(),
        usage.values().begin() + static_cast<ptrdiff_t>(day * 24)));
    auto d = scaler.Decide(history, TimeSeries(), quota, 8, 1e12, 0, -1,
                           static_cast<Micros>(day) * kMicrosPerDay);
    const char* action = "-";
    if (d.ok() &&
        d.value().action == autoscale::ScalingDecision::Action::kScaleUp) {
      quota = d.value().new_quota;
      action = "SCALE UP";
      if (scaled_on_day == 0) scaled_on_day = day;
    }
    double day_avg = history.Tail(24).Mean();
    std::printf("%6zu %12.0f %12.0f %14.0f %10s\n", day, day_avg, quota,
                d.ok() ? d.value().forecast_max : 0.0, action);
  }

  // Shape check: the quota was raised before usage ever crossed 85%.
  bool throttled = false;
  for (size_t h = 0; h < usage.size(); h++) {
    // Replay: quota before scale day is 1100.
    double q = (h / 24 < scaled_on_day) ? 1100 : quota;
    if (usage[h] > q) throttled = true;
  }
  std::printf(
      " -> proactive scale-up on day %zu; user throttling avoided: %s "
      "(paper: quota raised ahead of usage, no throttling)\n",
      scaled_on_day, throttled ? "NO (unexpected)" : "YES");
}

// ---- Figure 8b -----------------------------------------------------------

/// One simulated tenant month-series + a scaling policy = weekly oncall
/// counts. An "oncall" is a week in which the tenant experienced
/// throttling (usage above quota).
struct OncallResult {
  std::vector<int> weekly;  ///< Oncalls per week across all tenants.
  int total = 0;
};

OncallResult SimulateOncalls(bool predictive, uint64_t seed) {
  const int kTenants = 60;
  const size_t kWeeks = 26;
  const size_t kHours = kWeeks * 7 * 24;
  Rng rng(seed);

  OncallResult result;
  result.weekly.assign(kWeeks, 0);

  autoscale::ScalingPolicy policy;
  autoscale::Autoscaler scaler(policy);
  autoscale::ReactiveScaler reactive;

  for (int t = 0; t < kTenants; t++) {
    // Tenant usage: periodic + drifting trend; some tenants ramp hard
    // (the Double-11-style growth the paper highlights).
    sim::SeriesSpec spec;
    spec.hours = kHours;
    spec.base = 800 + rng.NextDouble() * 600;
    spec.trend_per_day = rng.NextDouble() * 14 - 2;  // Mostly growing.
    spec.seasons.push_back({24, spec.base * (0.1 + 0.2 * rng.NextDouble())});
    if (rng.NextBool(0.3)) {
      spec.seasons.push_back({168, spec.base * 0.15});
    }
    spec.noise_sigma = spec.base * 0.03;
    TimeSeries usage = sim::GenerateSeries(spec, rng);

    double quota = spec.base * 1.6;
    Micros last_scale_down = -1;

    for (size_t week = 0; week < kWeeks; week++) {
      size_t week_start = week * 7 * 24;
      // Policy runs at the start of each week on history so far.
      if (week >= 5) {  // Both policies need some history.
        if (predictive) {
          TimeSeries history(std::vector<double>(
              usage.values().begin(),
              usage.values().begin() +
                  static_cast<ptrdiff_t>(week_start)));
          auto d = scaler.Decide(history, TimeSeries(), quota, 8, 1e12, 10,
                                 last_scale_down,
                                 static_cast<Micros>(week_start) *
                                     kMicrosPerHour);
          if (d.ok() && d.value().action !=
                            autoscale::ScalingDecision::Action::kNone) {
            if (d.value().action ==
                autoscale::ScalingDecision::Action::kScaleDown) {
              last_scale_down =
                  static_cast<Micros>(week_start) * kMicrosPerHour;
            }
            quota = d.value().new_quota;
          }
        } else {
          // Reactive: looks only at current usage.
          auto d = reactive.Decide(usage[week_start], quota);
          if (d.action != autoscale::ScalingDecision::Action::kNone) {
            quota = d.new_quota;
          }
        }
      }
      // Did this tenant get throttled this week?
      bool throttled = false;
      for (size_t h = week_start;
           h < std::min(kHours, week_start + 7 * 24); h++) {
        if (usage[h] > quota) {
          throttled = true;
          // Any real system reacts to hard throttling eventually: the
          // reactive baseline bumps the quota after the pain, which is
          // exactly the oncall the paper counts.
          if (!predictive) quota = usage[h] / 0.65;
        }
      }
      if (throttled) {
        result.weekly[week]++;
        result.total++;
      }
    }
  }
  return result;
}

void RunOncallComparison() {
  std::printf("\nFigure 8b: weekly oncall (throttling) counts, 26 weeks, 60 "
              "tenants\n");
  OncallResult reactive = SimulateOncalls(/*predictive=*/false, 2024);
  OncallResult predictive = SimulateOncalls(/*predictive=*/true, 2024);

  std::printf("%6s %20s %22s\n", "week", "reactive oncalls",
              "predictive oncalls");
  for (size_t w = 0; w < reactive.weekly.size(); w++) {
    std::printf("%6zu %20d %22d\n", w + 1, reactive.weekly[w],
                predictive.weekly[w]);
  }
  double reduction =
      reactive.total == 0
          ? 0
          : 100.0 * (reactive.total - predictive.total) / reactive.total;
  std::printf(
      "\n -> totals: reactive=%d predictive=%d; reduction=%.0f%% "
      "(paper: ~65%% fewer oncalls after deploying autoscaling)\n",
      reactive.total, predictive.total, reduction);
}

}  // namespace

int main() {
  bench::PrintHeader("Figure 8: predictive autoscaling");
  RunScalingCase();
  RunOncallComparison();
  return 0;
}
