// Async command API: achieved request throughput and latency vs pipeline
// depth × client count.
//
// Closed-loop harness: N client sessions each keep D commands in flight
// against one shared cluster — every resolved future is immediately
// replaced — and the run measures requests completed per simulated tick
// plus the p50/p99 latency-in-ticks. The sync baseline runs the same
// clients through the lock-step Get adapter, which structurally caps the
// whole fleet at ~1 request per tick (each call drains its own future
// before the next is issued). The headline ratio is the payoff of the
// pipeline-shaped API: the 64-client × depth-16 grid point must clear
// >= 10x the sync baseline.
//
// Also cross-checks determinism: the 64x16 point is replayed under 2 and
// 4 data-plane workers and must reproduce the serial completion count
// and latency checksum bit-for-bit.
//
// Writes BENCH_async_clients.json (overwritten per run; CI archives
// BENCH_*.json as artifacts).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/abase.h"

namespace abase {
namespace bench {
namespace {

constexpr uint64_t kKeySpace = 2048;
constexpr uint64_t kValueBytes = 256;

meta::TenantConfig AsyncTenant() {
  meta::TenantConfig c;
  c.id = 1;
  c.name = "async-bench";
  c.tenant_quota_ru = 2000000;  // Ample: measure the API, not admission.
  c.num_partitions = 16;
  c.num_proxies = 8;
  c.num_proxy_groups = 2;
  return c;
}

Cluster MakeCluster(int workers) {
  ClusterOptions copts;
  copts.sim.seed = 7;
  copts.sim.data_plane_workers = workers;
  copts.sim.node.wfq.cpu_budget_ru = 100000;
  copts.sim.node.ru_capacity = 100000;
  // Timed settle: data-plane responses carry sampled sub-tick service
  // times so the grid reports real p50/p95/p99 micros next to the
  // tick-granular latency (proxy cache hits settle outside the data
  // plane and don't contribute samples).
  copts.sim.node.service_time.enabled = true;
  copts.sim.node.service_time.dist = latency::DistKind::kLognormal;
  copts.sim.node.service_time.mean_micros = 150;
  copts.sim.node.service_time.sigma = 1.2;
  copts.sim.latency.enabled = true;
  return Cluster(copts);
}

std::string KeyFor(int client, int seq) {
  return "t1:k" + std::to_string(
                      (static_cast<uint64_t>(client) * 131 + seq * 7) %
                      kKeySpace);
}

struct AsyncRun {
  size_t clients = 0;
  size_t depth = 0;
  int workers = 1;
  uint64_t completed = 0;
  uint64_t errors = 0;
  size_t ticks = 0;
  double reqs_per_tick = 0;
  double p50_latency_ticks = 0;
  double p99_latency_ticks = 0;
  WindowPercentiles micros;  ///< Sub-tick data-plane percentiles.
  uint64_t latency_checksum = 0;  ///< Order-independent determinism probe.
};

AsyncRun RunAsync(size_t num_clients, size_t depth, int workers,
                  size_t ticks) {
  Cluster cluster = MakeCluster(workers);
  PoolId pool = cluster.CreatePool(8);
  (void)cluster.CreateTenant(AsyncTenant(), pool);
  cluster.sim().PreloadKeys(1, kKeySpace, kValueBytes);

  std::vector<Client> clients;
  clients.reserve(num_clients);
  for (size_t c = 0; c < num_clients; c++) {
    clients.push_back(cluster.OpenClient(1));
  }

  std::vector<std::vector<Future<Reply>>> outstanding(num_clients);
  std::vector<int> next_seq(num_clients, 0);
  auto submit_one = [&](size_t c) {
    int seq = next_seq[c]++;
    outstanding[c].push_back(clients[c].Submit(
        Command::Get(KeyFor(static_cast<int>(c), seq))));
  };
  for (size_t c = 0; c < num_clients; c++) {
    for (size_t d = 0; d < depth; d++) submit_one(c);
  }

  AsyncRun run;
  run.clients = num_clients;
  run.depth = depth;
  run.workers = workers;
  run.ticks = ticks;
  std::vector<uint64_t> latencies;
  for (size_t tick = 0; tick < ticks; tick++) {
    cluster.Step();
    for (size_t c = 0; c < num_clients; c++) {
      auto& fs = outstanding[c];
      for (size_t i = 0; i < fs.size();) {
        if (fs[i].ready()) {
          const Reply& r = fs[i].value();
          if (r.ok() || r.status.IsNotFound()) {
            run.completed++;
          } else {
            run.errors++;
          }
          uint64_t lat = r.LatencyTicks();
          latencies.push_back(lat);
          run.latency_checksum += lat * lat;
          fs.erase(fs.begin() + static_cast<long>(i));
          submit_one(c);  // Closed loop: keep `depth` in flight.
        } else {
          i++;
        }
      }
    }
  }
  run.reqs_per_tick =
      ticks == 0 ? 0 : static_cast<double>(run.completed + run.errors) /
                           static_cast<double>(ticks);
  const auto& history = cluster.sim().History(1);
  run.micros = PercentilesOver(history, 0, history.size());
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    run.p50_latency_ticks =
        static_cast<double>(latencies[latencies.size() / 2]);
    run.p99_latency_ticks = static_cast<double>(
        latencies[std::min(latencies.size() - 1,
                           latencies.size() * 99 / 100)]);
  }
  return run;
}

/// The lock-step baseline: the same fleet issues synchronous Gets
/// round-robin; each call drains before the next submit, so the shared
/// simulation serves at most one client request per tick.
double RunSyncBaseline(size_t num_clients, size_t total_requests) {
  Cluster cluster = MakeCluster(/*workers=*/1);
  PoolId pool = cluster.CreatePool(8);
  (void)cluster.CreateTenant(AsyncTenant(), pool);
  cluster.sim().PreloadKeys(1, kKeySpace, kValueBytes);

  std::vector<Client> clients;
  clients.reserve(num_clients);
  for (size_t c = 0; c < num_clients; c++) {
    clients.push_back(cluster.OpenClient(1));
  }
  std::vector<int> next_seq(num_clients, 0);

  const Micros tick_len = cluster.sim().options().tick;
  Micros start = cluster.sim().clock().NowMicros();
  for (size_t i = 0; i < total_requests; i++) {
    size_t c = i % num_clients;
    (void)clients[c].Get(KeyFor(static_cast<int>(c), next_seq[c]++));
  }
  Micros elapsed = cluster.sim().clock().NowMicros() - start;
  double ticks = static_cast<double>(elapsed) / static_cast<double>(tick_len);
  return ticks <= 0 ? 0 : static_cast<double>(total_requests) / ticks;
}

}  // namespace
}  // namespace bench
}  // namespace abase

int main() {
  using abase::bench::AsyncRun;
  using abase::bench::RunAsync;
  using abase::bench::RunSyncBaseline;

  abase::bench::PrintHeader(
      "Async command API: closed-loop throughput vs pipeline depth x "
      "client count");

  constexpr size_t kTicks = 50;
  const std::vector<size_t> client_counts = {1, 8, 64};
  const std::vector<size_t> depths = {1, 4, 16};

  std::printf("%8s %7s %9s %12s %10s %8s %8s %8s %8s %8s\n", "clients",
              "depth", "workers", "reqs/tick", "errors", "p50", "p99",
              "p50us", "p95us", "p99us");
  std::vector<AsyncRun> runs;
  for (size_t clients : client_counts) {
    for (size_t depth : depths) {
      AsyncRun r = RunAsync(clients, depth, /*workers=*/1, kTicks);
      std::printf("%8zu %7zu %9d %12.1f %10llu %8.1f %8.1f %8.0f %8.0f "
                  "%8.0f\n",
                  r.clients, r.depth, r.workers, r.reqs_per_tick,
                  static_cast<unsigned long long>(r.errors),
                  r.p50_latency_ticks, r.p99_latency_ticks, r.micros.p50_us,
                  r.micros.p95_us, r.micros.p99_us);
      runs.push_back(r);
    }
  }

  // Lock-step baseline at the largest fleet size.
  const size_t kBaselineClients = 64;
  double sync_rpt = RunSyncBaseline(kBaselineClients, /*total_requests=*/400);
  const AsyncRun& headline = runs.back();  // 64 clients x depth 16.
  double speedup = sync_rpt > 0 ? headline.reqs_per_tick / sync_rpt : 0;
  std::printf(
      "\nsync lock-step baseline (%zu clients): %.2f reqs/tick\n"
      "async %zux%zu: %.1f reqs/tick -> %.1fx the lock-step loop "
      "(acceptance: >= 10x)\n",
      kBaselineClients, sync_rpt, headline.clients, headline.depth,
      headline.reqs_per_tick, speedup);

  // Determinism probe: the headline point replayed under parallel
  // executors must reproduce completions and latency checksum exactly.
  bool deterministic = true;
  for (int workers : {2, 4}) {
    AsyncRun r = RunAsync(64, 16, workers, kTicks);
    bool same = r.completed == headline.completed &&
                r.errors == headline.errors &&
                r.latency_checksum == headline.latency_checksum;
    deterministic = deterministic && same;
    std::printf("determinism @%d workers: %s\n", workers,
                same ? "bit-identical" : "MISMATCH");
  }

  FILE* f = std::fopen("BENCH_async_clients.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\"bench\":\"async_clients\",\"ticks\":%zu,"
                 "\"sync_baseline_clients\":%zu,"
                 "\"sync_reqs_per_tick\":%.3f,\"speedup_vs_sync\":%.2f,"
                 "\"deterministic_across_workers\":%s,\"results\":[",
                 kTicks, kBaselineClients, sync_rpt, speedup,
                 deterministic ? "true" : "false");
    for (size_t i = 0; i < runs.size(); i++) {
      const AsyncRun& r = runs[i];
      std::fprintf(f,
                   "%s{\"clients\":%zu,\"depth\":%zu,\"reqs_per_tick\":%.2f,"
                   "\"completed\":%llu,\"errors\":%llu,"
                   "\"p50_latency_ticks\":%.1f,\"p99_latency_ticks\":%.1f,"
                   "\"p50_us\":%.1f,\"p95_us\":%.1f,\"p99_us\":%.1f}",
                   i == 0 ? "" : ",", r.clients, r.depth, r.reqs_per_tick,
                   static_cast<unsigned long long>(r.completed),
                   static_cast<unsigned long long>(r.errors),
                   r.p50_latency_ticks, r.p99_latency_ticks, r.micros.p50_us,
                   r.micros.p95_us, r.micros.p99_us);
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_async_clients.json\n");
  }
  return speedup >= 10.0 && deterministic ? 0 : 1;
}
