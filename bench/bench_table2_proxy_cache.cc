// Table 2 reproduction: benefit summary of the proxy cache with limited
// fan-out hash routing.
//
// Six tenants mirroring the paper's Social Media 1-3 and E-Commerce 1-3
// rows (proxy fleets scaled down ~25x; group counts keep the paper's
// proxies-per-group ratios). For each tenant the harness measures the
// cache hit ratio and data-plane RU with the proxy cache disabled +
// random routing (the "before" column), then with AU-LRU caching +
// limited fan-out hash routing (the "after" column), and reports the RU
// saving.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "sim/cluster_sim.h"

using namespace abase;

namespace {

struct Table2Row {
  const char* name;
  uint32_t num_proxies;     // Paper count scaled down ~25x.
  uint32_t num_groups;      // Keeps the paper's N/n ratio.
  double zipf_theta;        // Hotter keyspace => more cacheable.
  uint64_t num_keys;
  double before_hit_paper;  // Paper's before/after for reference.
  double after_hit_paper;
  double ru_saving_paper;
};

struct Measured {
  double hit_ratio;
  double ru_per_sec;
};

Measured RunConfig(const Table2Row& row, bool cache_and_grouping) {
  sim::SimOptions opts;
  opts.seed = 101;
  opts.node.wfq.cpu_budget_ru = 200000;
  opts.node.disk.read_iops_capacity = 2e6;
  opts.node.cache.capacity_bytes = 1ull << 20;  // Small: proxy must help.
  opts.proxy.cache.capacity_bytes = 384ull << 10;  // ~"<10GB" scaled.
  opts.proxy.cache.default_ttl = 300 * kMicrosPerSecond;
  sim::ClusterSim cluster(opts);
  PoolId pool = cluster.AddPool(4);

  meta::TenantConfig cfg;
  cfg.id = 1;
  cfg.name = row.name;
  cfg.tenant_quota_ru = 1e6;
  cfg.num_partitions = 8;
  cfg.num_proxies = row.num_proxies;
  cfg.num_proxy_groups = cache_and_grouping ? row.num_groups : 1;
  // "Before" = proxy cache on but random routing (the paper's original
  // deployment: low hit ratios because every proxy sees a thin slice of
  // each key's traffic); "after" adds limited fan-out grouping.
  (void)cluster.AddTenant(cfg, pool,
                          cache_and_grouping
                              ? proxy::RoutingMode::kLimitedFanout
                              : proxy::RoutingMode::kRandom);

  sim::WorkloadProfile p;
  p.base_qps = 4000;
  p.read_ratio = 0.98;
  p.num_keys = row.num_keys;
  p.zipf_theta = row.zipf_theta;
  p.value_bytes = 512;
  cluster.SetWorkload(1, p);
  bench::PreloadTenant(cluster, 1, row.num_keys, p.value_bytes);

  const size_t kWarmup = 40, kMeasure = 40;
  cluster.RunTicks(kWarmup + kMeasure);
  auto w = bench::Aggregate(cluster, 1, kWarmup, kWarmup + kMeasure);

  Measured m;
  // Table 2's "cache hit ratio" is the proxy-layer hit ratio.
  uint64_t proxy_hits = 0, issued_reads = 0;
  const auto& h = cluster.History(1);
  for (size_t i = kWarmup; i < h.size(); i++) {
    proxy_hits += h[i].proxy_hits;
    issued_reads += h[i].proxy_hits + h[i].reads_completed;
  }
  m.hit_ratio = issued_reads == 0
                    ? 0
                    : static_cast<double>(proxy_hits) /
                          static_cast<double>(issued_reads);
  m.ru_per_sec = w.ru_per_sec;
  return m;
}

}  // namespace

int main() {
  bench::PrintHeader("Table 2: benefit summary by proxy cache");

  // #Proxy/#Group keep the paper's ratios (375/75=5, 1626/32~51,
  // 11530/15~769 -> capped at fleet size, 790/15~53, ...). Key-space
  // hotness varies to reproduce the different "before" hit levels.
  std::vector<Table2Row> rows = {
      {"Social Media 1", 25, 5, 0.99, 20000, 5, 86, 85},
      {"Social Media 2", 24, 4, 0.97, 30000, 5, 67, 70},
      {"Social Media 3", 32, 2, 0.90, 90000, 10, 33, 38},
      {"E-Commerce 1", 16, 2, 0.95, 30000, 24, 60, 61},
      {"E-Commerce 2", 24, 3, 0.95, 30000, 24, 60, 57},
      {"E-Commerce 3", 32, 4, 0.95, 30000, 24, 60, 79},
  };

  std::printf("%-16s %7s %7s | %18s | %18s | %10s | %s\n", "Tenant", "#Proxy",
              "#Group", "hit before->after", "paper before->after",
              "RU saving", "paper");
  for (const auto& row : rows) {
    Measured before = RunConfig(row, /*cache_and_grouping=*/false);
    Measured after = RunConfig(row, /*cache_and_grouping=*/true);
    double saving = before.ru_per_sec > 0
                        ? 100.0 * (before.ru_per_sec - after.ru_per_sec) /
                              before.ru_per_sec
                        : 0;
    std::printf("%-16s %7u %7u | %7.0f%% -> %5.0f%% | %7.0f%% -> %5.0f%% | "
                "%9.0f%% | %3.0f%%\n",
                row.name, row.num_proxies, row.num_groups,
                before.hit_ratio * 100, after.hit_ratio * 100,
                row.before_hit_paper, row.after_hit_paper, saving,
                row.ru_saving_paper);
  }
  std::printf(
      "\nShape check: enabling the proxy cache + limited fan-out grouping "
      "must raise every tenant's proxy hit ratio sharply and cut data-"
      "plane RU by tens of percent (paper: 38-85%% savings).\n");
  return 0;
}
