// Live failover: ticks-to-recover and error-window area vs replica count.
//
// One tenant under steady load loses the primary of partition 0 mid-run;
// the failure detector promotes a surviving replica (when one exists),
// the node later recovers via WAL replay and fails back. Swept over the
// tenant's replication factor:
//   replicas=1  no survivor to promote -> the partition is dark until
//               recovery completes (the availability cost of running
//               without replicas);
//   replicas>=2 the window collapses to the failure-detection delay.
//
// Reported per replica count: ticks-to-recover (last tick with any
// Unavailable resolution, relative to the failure tick), the error-window
// area (total Unavailable resolutions), and total redirect chases.
//
// A second sweep drives the replication-lag axis: a steady acknowledged
// write stream, a mid-run primary kill, recovery and failback — per
// `SimOptions::replication_lag_ticks`, reporting the acknowledged writes
// lost at failover (promotion report) and still lost after failback
// (client-measured: the divergent suffix is discarded by the resync).
//
// Gates (enforced by exit code):
//   * the replicas=3 run replayed under 2 and 4 data-plane workers must
//     reproduce the serial TenantTickMetrics history bit-for-bit;
//   * replicas>=2 must shrink the error window vs replicas=1;
//   * replication lag 0 must lose ZERO acknowledged writes, and the
//     lost-write window must grow monotonically with the lag.
//
// Writes BENCH_failover.json (overwritten per run; CI archives
// BENCH_*.json as artifacts).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/abase.h"
#include "sim/cluster_sim.h"

namespace abase {
namespace bench {
namespace {

constexpr size_t kWarmupTicks = 10;
constexpr size_t kFailTicks = 10;   ///< Failure -> recovery start.
constexpr size_t kAfterTicks = 10;  ///< Recovery start -> end of run.
constexpr int kCatchUpTicks = 2;

struct FailoverRun {
  int replicas = 1;
  int workers = 1;
  size_t ticks_to_recover = 0;
  uint64_t error_window_area = 0;  ///< Total Unavailable resolutions.
  uint64_t redirects = 0;
  uint64_t ok_total = 0;
  WindowPercentiles latency;  ///< Sub-tick micros over the whole run.
  std::vector<sim::TenantTickMetrics> history;
};

/// One point on the replication-lag axis: a steady acknowledged write
/// stream, a primary kill, recovery + failback, and the lost-write
/// accounting at both ends.
struct LagRun {
  int lag = 0;
  size_t acked_writes = 0;
  uint64_t lost_at_failover = 0;     ///< Promotion report accounting.
  uint64_t lost_after_failback = 0;  ///< Client-measured unreadable keys.
};

LagRun RunLagAxis(int lag) {
  ClusterOptions copts;
  copts.sim.seed = 271;
  copts.sim.failover_detection_ticks = 0;
  copts.sim.replication_lag_ticks = lag;
  // Keep executed re-replication out of this axis: the node comes back
  // and fails back, which is the path whose data loss we are measuring.
  copts.sim.re_replication_delay_ticks = 256;
  Cluster cluster(copts);
  PoolId pool = cluster.CreatePool(4);
  meta::TenantConfig cfg;
  cfg.id = 1;
  cfg.name = "lag-axis";
  cfg.tenant_quota_ru = 100000;
  cfg.num_partitions = 1;
  cfg.num_proxies = 2;
  cfg.num_proxy_groups = 1;
  cfg.replicas = 3;
  (void)cluster.CreateTenant(cfg, pool);
  // Reads must measure engine state, not proxy-cached copies.
  cluster.sim().SetProxyCacheEnabled(1, false);
  Client client = cluster.OpenClient(1);

  constexpr int kWriteTicks = 12;
  constexpr int kWritesPerTick = 4;
  std::vector<std::string> acked;
  for (int t = 0; t < kWriteTicks; t++) {
    std::vector<Command> batch;
    std::vector<std::string> keys;
    for (int i = 0; i < kWritesPerTick; i++) {
      std::string key = "w" + std::to_string(t) + "_" + std::to_string(i);
      keys.push_back(key);
      batch.push_back(Command::Set(key, "v"));
    }
    std::vector<Future<Reply>> futures = client.SubmitBatch(std::move(batch));
    cluster.Step();
    for (size_t i = 0; i < futures.size(); i++) {
      if (futures[i].ready() && (*futures[i]).ok()) acked.push_back(keys[i]);
    }
  }

  const NodeId victim = cluster.meta().PrimaryFor(1, 0);
  cluster.FailNode(victim);
  cluster.RunTicks(2);  // Crash lands; detection 0 promotes immediately.

  LagRun run;
  run.lag = lag;
  run.acked_writes = acked.size();
  if (cluster.sim().LastFailoverReport().has_value()) {
    run.lost_at_failover =
        cluster.sim().LastFailoverReport()->lost_acked_writes;
  }

  // Recovery + failback: the divergent acknowledged suffix is discarded
  // by the resync, so the loss persists into steady state.
  cluster.RecoverNode(victim, /*catch_up_ticks=*/-1);
  cluster.RunTicks(6);
  for (const std::string& key : acked) {
    if (!client.Get(key).ok()) run.lost_after_failback++;
  }
  return run;
}

uint64_t Mix64(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

uint64_t DoubleBits(double d) {
  uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

/// Order-sensitive fingerprint of a metrics history (bit-exact doubles).
uint64_t Fingerprint(const std::vector<sim::TenantTickMetrics>& history) {
  uint64_t h = 1469598103934665603ull;
  for (const auto& m : history) {
    h = Mix64(h, m.issued);
    h = Mix64(h, m.ok);
    h = Mix64(h, m.errors);
    h = Mix64(h, m.throttled);
    h = Mix64(h, m.unavailable);
    h = Mix64(h, m.redirects);
    h = Mix64(h, m.replica_reads);
    h = Mix64(h, m.replica_lag_sum);
    h = Mix64(h, m.proxy_hits);
    h = Mix64(h, m.node_cache_hits);
    h = Mix64(h, m.disk_reads);
    h = Mix64(h, m.reads_completed);
    h = Mix64(h, DoubleBits(m.ru_charged));
    h = Mix64(h, DoubleBits(m.latency_sum));
    h = Mix64(h, static_cast<uint64_t>(m.latency_max));
    h = Mix64(h, m.latency_count);
  }
  return h;
}

FailoverRun RunFailover(int replicas, int workers) {
  sim::SimOptions opt;
  opt.seed = 99;
  opt.data_plane_workers = workers;
  opt.failover_detection_ticks = 1;
  // Timed settle: data-plane responses carry sampled sub-tick service
  // times, so the percentile columns show what the outage does to the
  // tail (queueing on the survivors), not just the error count.
  opt.node.service_time.enabled = true;
  opt.node.service_time.dist = latency::DistKind::kLognormal;
  opt.node.service_time.mean_micros = 150;
  opt.node.service_time.sigma = 1.2;
  opt.latency.enabled = true;
  sim::ClusterSim sim(opt);
  PoolId pool = sim.AddPool(8);

  meta::TenantConfig cfg;
  cfg.id = 1;
  cfg.name = "failover-bench";
  cfg.tenant_quota_ru = 100000;
  cfg.num_partitions = 4;
  cfg.num_proxies = 4;
  cfg.num_proxy_groups = 2;
  cfg.replicas = replicas;
  (void)sim.AddTenant(cfg, pool);
  sim.PreloadKeys(1, /*num_keys=*/1000, /*value_bytes=*/256);

  sim::WorkloadProfile profile;
  profile.base_qps = 2000;
  profile.read_ratio = 0.8;
  profile.num_keys = 1000;
  profile.value_bytes = 256;
  sim.SetWorkload(1, profile);

  const NodeId victim = sim.meta().PrimaryFor(1, 0);
  const size_t fail_tick = kWarmupTicks;
  const size_t recover_tick = kWarmupTicks + kFailTicks;
  const size_t total = kWarmupTicks + kFailTicks + kAfterTicks;
  for (size_t tick = 0; tick < total; tick++) {
    if (tick == fail_tick) sim.FailNode(victim);
    if (tick == recover_tick) sim.RecoverNode(victim, kCatchUpTicks);
    sim.Tick();
  }

  FailoverRun run;
  run.replicas = replicas;
  run.workers = workers;
  run.history = sim.History(1);
  size_t last_unavailable = fail_tick;
  for (size_t tick = 0; tick < run.history.size(); tick++) {
    const auto& m = run.history[tick];
    run.error_window_area += m.unavailable;
    run.redirects += m.redirects;
    run.ok_total += m.ok;
    if (m.unavailable > 0 && tick >= fail_tick) last_unavailable = tick;
  }
  run.ticks_to_recover = last_unavailable - fail_tick + 1;
  run.latency = PercentilesOver(run.history, 0, run.history.size());
  return run;
}

}  // namespace
}  // namespace bench
}  // namespace abase

int main() {
  using abase::bench::FailoverRun;
  using abase::bench::Fingerprint;
  using abase::bench::RunFailover;

  abase::bench::PrintHeader(
      "Live failover: error window and recovery time vs replica count");

  std::printf("%9s %9s %17s %14s %10s %10s %8s %8s %8s\n", "replicas",
              "workers", "ticks_to_recover", "error_area", "redirects",
              "ok_total", "p50us", "p95us", "p99us");
  std::vector<FailoverRun> runs;
  for (int replicas : {1, 2, 3}) {
    FailoverRun r = RunFailover(replicas, /*workers=*/1);
    std::printf("%9d %9d %17zu %14llu %10llu %10llu %8.0f %8.0f %8.0f\n",
                r.replicas, r.workers, r.ticks_to_recover,
                static_cast<unsigned long long>(r.error_window_area),
                static_cast<unsigned long long>(r.redirects),
                static_cast<unsigned long long>(r.ok_total), r.latency.p50_us,
                r.latency.p95_us, r.latency.p99_us);
    runs.push_back(std::move(r));
  }

  // Availability gate: running with replicas must shrink the outage.
  const FailoverRun& solo = runs[0];
  bool replicas_help = true;
  for (size_t i = 1; i < runs.size(); i++) {
    replicas_help = replicas_help &&
                    runs[i].error_window_area < solo.error_window_area &&
                    runs[i].ticks_to_recover <= solo.ticks_to_recover;
  }
  std::printf("\nreplicas shrink the error window: %s\n",
              replicas_help ? "yes" : "NO (regression)");

  // Determinism gate: the replicas=3 failover replayed under parallel
  // executors must reproduce the serial history bit-for-bit.
  uint64_t serial_fp = Fingerprint(runs.back().history);
  bool deterministic = true;
  for (int workers : {2, 4}) {
    FailoverRun r = RunFailover(/*replicas=*/3, workers);
    bool same = Fingerprint(r.history) == serial_fp;
    deterministic = deterministic && same;
    std::printf("determinism @%d workers: %s\n", workers,
                same ? "bit-identical" : "MISMATCH");
  }

  // Replication-lag axis: acknowledged writes lost at failover and still
  // lost after failback, per configured lag.
  std::printf("\n%6s %12s %18s %20s\n", "lag", "acked", "lost_at_failover",
              "lost_after_failback");
  std::vector<abase::bench::LagRun> lag_runs;
  for (int lag : {0, 1, 2, 4}) {
    abase::bench::LagRun r = abase::bench::RunLagAxis(lag);
    std::printf("%6d %12zu %18llu %20llu\n", r.lag, r.acked_writes,
                static_cast<unsigned long long>(r.lost_at_failover),
                static_cast<unsigned long long>(r.lost_after_failback));
    lag_runs.push_back(r);
  }

  // Lag gates: lag 0 loses nothing; the window grows monotonically.
  bool lag_zero_lossless = lag_runs[0].lost_at_failover == 0 &&
                           lag_runs[0].lost_after_failback == 0;
  bool lag_monotone = true;
  for (size_t i = 1; i < lag_runs.size(); i++) {
    lag_monotone = lag_monotone &&
                   lag_runs[i].lost_at_failover >=
                       lag_runs[i - 1].lost_at_failover &&
                   lag_runs[i].lost_after_failback >=
                       lag_runs[i - 1].lost_after_failback;
  }
  lag_monotone = lag_monotone && lag_runs.back().lost_at_failover > 0;
  std::printf("lag=0 loses zero acked writes: %s\n",
              lag_zero_lossless ? "yes" : "NO (regression)");
  std::printf("lost-write window grows with lag: %s\n",
              lag_monotone ? "yes" : "NO (regression)");

  FILE* f = std::fopen("BENCH_failover.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\"bench\":\"failover\",\"warmup_ticks\":%zu,"
                 "\"fail_ticks\":%zu,\"after_ticks\":%zu,"
                 "\"catch_up_ticks\":%d,"
                 "\"deterministic_across_workers\":%s,"
                 "\"replicas_shrink_error_window\":%s,"
                 "\"lag_zero_lossless\":%s,"
                 "\"lost_writes_grow_with_lag\":%s,\"results\":[",
                 abase::bench::kWarmupTicks, abase::bench::kFailTicks,
                 abase::bench::kAfterTicks, abase::bench::kCatchUpTicks,
                 deterministic ? "true" : "false",
                 replicas_help ? "true" : "false",
                 lag_zero_lossless ? "true" : "false",
                 lag_monotone ? "true" : "false");
    for (size_t i = 0; i < runs.size(); i++) {
      const FailoverRun& r = runs[i];
      std::fprintf(f,
                   "%s{\"replicas\":%d,\"ticks_to_recover\":%zu,"
                   "\"error_window_area\":%llu,\"redirects\":%llu,"
                   "\"ok_total\":%llu,\"p50_us\":%.1f,\"p95_us\":%.1f,"
                   "\"p99_us\":%.1f}",
                   i == 0 ? "" : ",", r.replicas, r.ticks_to_recover,
                   static_cast<unsigned long long>(r.error_window_area),
                   static_cast<unsigned long long>(r.redirects),
                   static_cast<unsigned long long>(r.ok_total),
                   r.latency.p50_us, r.latency.p95_us, r.latency.p99_us);
    }
    std::fprintf(f, "],\"lag_results\":[");
    for (size_t i = 0; i < lag_runs.size(); i++) {
      const abase::bench::LagRun& r = lag_runs[i];
      std::fprintf(f,
                   "%s{\"replication_lag_ticks\":%d,\"acked_writes\":%zu,"
                   "\"lost_at_failover\":%llu,\"lost_after_failback\":%llu}",
                   i == 0 ? "" : ",", r.lag, r.acked_writes,
                   static_cast<unsigned long long>(r.lost_at_failover),
                   static_cast<unsigned long long>(r.lost_after_failback));
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_failover.json\n");
  }
  return deterministic && replicas_help && lag_zero_lossless && lag_monotone
             ? 0
             : 1;
}
