// Live failover: ticks-to-recover and error-window area vs replica count.
//
// One tenant under steady load loses the primary of partition 0 mid-run;
// the failure detector promotes a surviving replica (when one exists),
// the node later recovers via WAL replay and fails back. Swept over the
// tenant's replication factor:
//   replicas=1  no survivor to promote -> the partition is dark until
//               recovery completes (the availability cost of running
//               without replicas);
//   replicas>=2 the window collapses to the failure-detection delay.
//
// Reported per replica count: ticks-to-recover (last tick with any
// Unavailable resolution, relative to the failure tick), the error-window
// area (total Unavailable resolutions), and total redirect chases.
//
// Gates (enforced by exit code):
//   * the replicas=3 run replayed under 2 and 4 data-plane workers must
//     reproduce the serial TenantTickMetrics history bit-for-bit;
//   * replicas>=2 must shrink the error window vs replicas=1.
//
// Writes BENCH_failover.json (overwritten per run; CI archives
// BENCH_*.json as artifacts).
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "sim/cluster_sim.h"

namespace abase {
namespace bench {
namespace {

constexpr size_t kWarmupTicks = 10;
constexpr size_t kFailTicks = 10;   ///< Failure -> recovery start.
constexpr size_t kAfterTicks = 10;  ///< Recovery start -> end of run.
constexpr int kCatchUpTicks = 2;

struct FailoverRun {
  int replicas = 1;
  int workers = 1;
  size_t ticks_to_recover = 0;
  uint64_t error_window_area = 0;  ///< Total Unavailable resolutions.
  uint64_t redirects = 0;
  uint64_t ok_total = 0;
  std::vector<sim::TenantTickMetrics> history;
};

uint64_t Mix64(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

uint64_t DoubleBits(double d) {
  uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

/// Order-sensitive fingerprint of a metrics history (bit-exact doubles).
uint64_t Fingerprint(const std::vector<sim::TenantTickMetrics>& history) {
  uint64_t h = 1469598103934665603ull;
  for (const auto& m : history) {
    h = Mix64(h, m.issued);
    h = Mix64(h, m.ok);
    h = Mix64(h, m.errors);
    h = Mix64(h, m.throttled);
    h = Mix64(h, m.unavailable);
    h = Mix64(h, m.redirects);
    h = Mix64(h, m.proxy_hits);
    h = Mix64(h, m.node_cache_hits);
    h = Mix64(h, m.disk_reads);
    h = Mix64(h, m.reads_completed);
    h = Mix64(h, DoubleBits(m.ru_charged));
    h = Mix64(h, DoubleBits(m.latency_sum));
    h = Mix64(h, static_cast<uint64_t>(m.latency_max));
    h = Mix64(h, m.latency_count);
  }
  return h;
}

FailoverRun RunFailover(int replicas, int workers) {
  sim::SimOptions opt;
  opt.seed = 99;
  opt.data_plane_workers = workers;
  opt.failover_detection_ticks = 1;
  sim::ClusterSim sim(opt);
  PoolId pool = sim.AddPool(8);

  meta::TenantConfig cfg;
  cfg.id = 1;
  cfg.name = "failover-bench";
  cfg.tenant_quota_ru = 100000;
  cfg.num_partitions = 4;
  cfg.num_proxies = 4;
  cfg.num_proxy_groups = 2;
  cfg.replicas = replicas;
  (void)sim.AddTenant(cfg, pool);
  sim.PreloadKeys(1, /*num_keys=*/1000, /*value_bytes=*/256);

  sim::WorkloadProfile profile;
  profile.base_qps = 2000;
  profile.read_ratio = 0.8;
  profile.num_keys = 1000;
  profile.value_bytes = 256;
  sim.SetWorkload(1, profile);

  const NodeId victim = sim.meta().PrimaryFor(1, 0);
  const size_t fail_tick = kWarmupTicks;
  const size_t recover_tick = kWarmupTicks + kFailTicks;
  const size_t total = kWarmupTicks + kFailTicks + kAfterTicks;
  for (size_t tick = 0; tick < total; tick++) {
    if (tick == fail_tick) sim.FailNode(victim);
    if (tick == recover_tick) sim.RecoverNode(victim, kCatchUpTicks);
    sim.Tick();
  }

  FailoverRun run;
  run.replicas = replicas;
  run.workers = workers;
  run.history = sim.History(1);
  size_t last_unavailable = fail_tick;
  for (size_t tick = 0; tick < run.history.size(); tick++) {
    const auto& m = run.history[tick];
    run.error_window_area += m.unavailable;
    run.redirects += m.redirects;
    run.ok_total += m.ok;
    if (m.unavailable > 0 && tick >= fail_tick) last_unavailable = tick;
  }
  run.ticks_to_recover = last_unavailable - fail_tick + 1;
  return run;
}

}  // namespace
}  // namespace bench
}  // namespace abase

int main() {
  using abase::bench::FailoverRun;
  using abase::bench::Fingerprint;
  using abase::bench::RunFailover;

  abase::bench::PrintHeader(
      "Live failover: error window and recovery time vs replica count");

  std::printf("%9s %9s %17s %14s %10s %10s\n", "replicas", "workers",
              "ticks_to_recover", "error_area", "redirects", "ok_total");
  std::vector<FailoverRun> runs;
  for (int replicas : {1, 2, 3}) {
    FailoverRun r = RunFailover(replicas, /*workers=*/1);
    std::printf("%9d %9d %17zu %14llu %10llu %10llu\n", r.replicas,
                r.workers, r.ticks_to_recover,
                static_cast<unsigned long long>(r.error_window_area),
                static_cast<unsigned long long>(r.redirects),
                static_cast<unsigned long long>(r.ok_total));
    runs.push_back(std::move(r));
  }

  // Availability gate: running with replicas must shrink the outage.
  const FailoverRun& solo = runs[0];
  bool replicas_help = true;
  for (size_t i = 1; i < runs.size(); i++) {
    replicas_help = replicas_help &&
                    runs[i].error_window_area < solo.error_window_area &&
                    runs[i].ticks_to_recover <= solo.ticks_to_recover;
  }
  std::printf("\nreplicas shrink the error window: %s\n",
              replicas_help ? "yes" : "NO (regression)");

  // Determinism gate: the replicas=3 failover replayed under parallel
  // executors must reproduce the serial history bit-for-bit.
  uint64_t serial_fp = Fingerprint(runs.back().history);
  bool deterministic = true;
  for (int workers : {2, 4}) {
    FailoverRun r = RunFailover(/*replicas=*/3, workers);
    bool same = Fingerprint(r.history) == serial_fp;
    deterministic = deterministic && same;
    std::printf("determinism @%d workers: %s\n", workers,
                same ? "bit-identical" : "MISMATCH");
  }

  FILE* f = std::fopen("BENCH_failover.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\"bench\":\"failover\",\"warmup_ticks\":%zu,"
                 "\"fail_ticks\":%zu,\"after_ticks\":%zu,"
                 "\"catch_up_ticks\":%d,"
                 "\"deterministic_across_workers\":%s,"
                 "\"replicas_shrink_error_window\":%s,\"results\":[",
                 abase::bench::kWarmupTicks, abase::bench::kFailTicks,
                 abase::bench::kAfterTicks, abase::bench::kCatchUpTicks,
                 deterministic ? "true" : "false",
                 replicas_help ? "true" : "false");
    for (size_t i = 0; i < runs.size(); i++) {
      const FailoverRun& r = runs[i];
      std::fprintf(f,
                   "%s{\"replicas\":%d,\"ticks_to_recover\":%zu,"
                   "\"error_window_area\":%llu,\"redirects\":%llu,"
                   "\"ok_total\":%llu}",
                   i == 0 ? "" : ",", r.replicas, r.ticks_to_recover,
                   static_cast<unsigned long long>(r.error_window_area),
                   static_cast<unsigned long long>(r.redirects),
                   static_cast<unsigned long long>(r.ok_total));
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_failover.json\n");
  }
  return deterministic && replicas_help ? 0 : 1;
}
