// Ablation: SA-LRU vs plain LRU (DataNode cache, Section 4.4), and the
// AU-LRU active-update mechanism vs a passive TTL LRU (proxy cache).
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "cache/au_lru.h"
#include "cache/lru_cache.h"
#include "cache/sa_lru.h"
#include "common/clock.h"
#include "common/rng.h"

using namespace abase;

namespace {

// Mixed-size workload modeled on Table 1: hot small items (social
// comments, 0.1KB), warm mid items (1-2KB), cold large one-shot items
// (10KB ads).
void RunSaLruAblation() {
  std::printf("\nAblation A: SA-LRU vs plain LRU under Table-1-style mixed "
              "sizes\n");
  std::printf("%12s %12s %12s %12s\n", "cache MB", "LRU hit%", "SA-LRU hit%",
              "gain");

  for (uint64_t cap_mb : {4, 8, 16, 32}) {
    cache::SaLruOptions so;
    so.capacity_bytes = cap_mb << 20;
    cache::SaLruCache sa(so);
    cache::LruCache lru(cap_mb << 20);
    Rng rng(3);
    ZipfianGenerator small_keys(5000, 0.95);
    ZipfianGenerator mid_keys(20000, 0.85);

    for (int i = 0; i < 300000; i++) {
      double pick = rng.NextDouble();
      std::string key;
      uint64_t size;
      if (pick < 0.55) {
        key = "s" + std::to_string(small_keys.Next(rng));
        size = 100;
      } else if (pick < 0.85) {
        key = "m" + std::to_string(mid_keys.Next(rng));
        size = 2048;
      } else {
        key = "l" + std::to_string(i);  // Read-once large items.
        size = 10240;
      }
      if (!sa.Get(key).has_value()) sa.Put(key, "v", size);
      if (!lru.Get(key).has_value()) lru.Put(key, "v", size);
    }
    double lru_hit = lru.stats().HitRatio() * 100;
    double sa_hit = sa.stats().HitRatio() * 100;
    std::printf("%12llu %11.1f%% %11.1f%% %+11.1f%%\n",
                static_cast<unsigned long long>(cap_mb), lru_hit, sa_hit,
                sa_hit - lru_hit);
  }
  std::printf(" -> SA-LRU should win at every capacity (paper: size-aware "
              "eviction raises the overall hit ratio).\n");
}

// Hot keys expiring under load: passive LRU suffers a miss (and a
// DataNode fetch) every TTL period per hot key; AU-LRU refreshes hot
// entries before expiry so client-visible misses stay near zero.
void RunAuLruAblation() {
  std::printf("\nAblation B: AU-LRU active update vs passive TTL LRU\n");

  SimClock clock;
  cache::AuLruOptions active_opts;
  active_opts.capacity_bytes = 1 << 20;
  active_opts.default_ttl = 10 * kMicrosPerSecond;
  active_opts.refresh_window = 3 * kMicrosPerSecond;
  active_opts.refresh_min_hits = 2;
  cache::AuLruCache active(active_opts, &clock);

  cache::AuLruOptions passive_opts = active_opts;
  passive_opts.refresh_window = 0;  // Never flags refreshes.
  cache::AuLruCache passive(passive_opts, &clock);

  Rng rng(4);
  ZipfianGenerator keys(200, 0.99);
  uint64_t active_backend_fetches = 0, passive_backend_fetches = 0;

  for (int sec = 0; sec < 300; sec++) {
    for (int i = 0; i < 200; i++) {
      std::string key = "k" + std::to_string(keys.Next(rng));
      if (!active.Get(key).hit) {
        active_backend_fetches++;
        active.Put(key, "v", 100);
      }
      if (!passive.Get(key).hit) {
        passive_backend_fetches++;
        passive.Put(key, "v", 100);
      }
    }
    // Background refreshes also hit the backend — count them honestly.
    for (const std::string& key : active.TakeRefreshQueue()) {
      active_backend_fetches++;
      active.Put(key, "v", 100);
    }
    clock.Advance(kMicrosPerSecond);
  }

  std::printf("  client-visible hit ratio: active-update %.2f%% vs passive "
              "%.2f%%\n",
              active.stats().HitRatio() * 100,
              passive.stats().HitRatio() * 100);
  std::printf("  backend fetches: active-update %llu vs passive %llu\n",
              static_cast<unsigned long long>(active_backend_fetches),
              static_cast<unsigned long long>(passive_backend_fetches));
  std::printf(" -> active update converts periodic expiry-miss spikes into "
              "background refreshes; client hit ratio rises.\n");
}

}  // namespace

int main() {
  bench::PrintHeader("Ablation: caching mechanisms (Section 4.4)");
  RunSaLruAblation();
  RunAuLruAblation();
  return 0;
}
