// Ablations for the isolation mechanism (Sections 4.1 and 4.3):
//  A. cache-aware RU estimation vs cache-blind estimation;
//  B. dual-layer WFQ vs FIFO under a heavyweight/lightweight tenant mix.
#include <cstdio>
#include <deque>
#include <map>

#include "bench/bench_util.h"
#include "ru/request_unit.h"
#include "sched/dual_layer_wfq.h"

using namespace abase;

namespace {

// A: a hot-cached tenant is admission-controlled with both estimators.
// The cache-aware estimate tracks true consumption; the blind estimate
// over-throttles by the hit ratio factor.
void RunRuAblation() {
  std::printf("\nAblation A: cache-aware vs cache-blind RU estimation\n");
  std::printf("%12s | %14s %14s | %s\n", "hit ratio", "aware est. RU",
              "blind est. RU", "over-throttle factor");

  for (double hit : {0.0, 0.5, 0.9, 0.99}) {
    ru::RuEstimator est;
    // Teach the estimator the workload: 2KB reads at the given hit ratio.
    for (int i = 0; i < 500; i++) {
      bool was_hit = (i % 100) < static_cast<int>(hit * 100);
      est.ChargeRead(2048, was_hit ? ru::ReadServedBy::kDataNodeCache
                                   : ru::ReadServedBy::kDisk);
    }
    double aware = est.EstimateReadRu();
    double blind = est.EstimateReadRuCacheBlind();
    std::printf("%11.0f%% | %14.3f %14.3f | %17.1fx\n", hit * 100, aware,
                blind, blind / aware);
  }
  std::printf(
      " -> With a 99%%-hit workload the blind estimator reserves ~5x the "
      "RU actually consumed: under a fixed quota it throttles a tenant "
      "that the cache would have served nearly for free (Challenge 1).\n");
}

// B: FIFO vs the four-class dual-layer WFQ when a tenant of heavyweight
// requests shares the node with a lightweight-request tenant. The FIFO
// baseline drains a single arrival-ordered queue until the tick's RU
// budget is spent — exactly the "heavyweight requests sit in front of
// lightweight ones" failure 2DFQ describes.
void RunWfqVsFifo() {
  std::printf("\nAblation B: dual-layer WFQ vs FIFO (2DFQ-style mix)\n");

  constexpr double kBudget = 1000;
  constexpr int kTicks = 30;
  constexpr int kPerTick = 150;  // 150 x (10 + 0.5) RU >> budget.

  struct Item {
    TenantId tenant;
    double cost;
    int enq_tick;
  };

  // --- FIFO baseline -------------------------------------------------------
  std::deque<Item> fifo;
  double fifo_t2_served = 0, fifo_t2_wait = 0;
  uint64_t fifo_t2_done = 0;
  for (int tick = 0; tick < kTicks; tick++) {
    for (int i = 0; i < kPerTick; i++) {
      fifo.push_back(Item{1, 10.0, tick});
      fifo.push_back(Item{2, 0.5, tick});
    }
    double budget = kBudget;
    while (!fifo.empty() && budget >= fifo.front().cost) {
      Item it = fifo.front();
      fifo.pop_front();
      budget -= it.cost;
      if (it.tenant == 2) {
        fifo_t2_served += it.cost;
        fifo_t2_wait += tick - it.enq_tick;
        fifo_t2_done++;
      }
    }
  }

  // --- Dual-layer WFQ --------------------------------------------------------
  sched::DualWfqOptions o;
  o.cpu_budget_ru = kBudget;
  o.single_tenant_cpu_cap = 1.0;
  sched::DualLayerWfq wfq(o);
  double wfq_t2_served = 0, wfq_t2_wait = 0;
  uint64_t wfq_t2_done = 0;
  uint64_t id = 0;
  std::map<uint64_t, int> enq_tick;
  int tick_now = 0;
  for (int tick = 0; tick < kTicks; tick++) {
    tick_now = tick;
    for (int i = 0; i < kPerTick; i++) {
      sched::SchedRequest r1;
      r1.req_id = ++id;
      r1.tenant = 1;
      r1.cpu_cost_ru = 10;
      r1.cls = RequestClass::kLargeRead;
      r1.quota_share = 0.5;
      enq_tick[r1.req_id] = tick;
      wfq.Enqueue(r1);

      sched::SchedRequest r2;
      r2.req_id = ++id;
      r2.tenant = 2;
      r2.cpu_cost_ru = 0.5;
      r2.cls = RequestClass::kSmallRead;
      r2.quota_share = 0.5;
      enq_tick[r2.req_id] = tick;
      wfq.Enqueue(r2);
    }
    wfq.RunTick(
        [](const sched::SchedRequest&) {
          return sched::CacheProbe{true, false, 0};
        },
        [&](const sched::SchedRequest& r, sched::SchedOutcome) {
          if (r.tenant == 2) {
            wfq_t2_served += r.cpu_cost_ru;
            wfq_t2_wait += tick_now - enq_tick[r.req_id];
            wfq_t2_done++;
          }
        });
  }

  double fifo_mean_wait =
      fifo_t2_done == 0 ? 0 : fifo_t2_wait / static_cast<double>(fifo_t2_done);
  double wfq_mean_wait =
      wfq_t2_done == 0 ? 0 : wfq_t2_wait / static_cast<double>(wfq_t2_done);
  std::printf("  tenant-2 (lightweight) requests served: WFQ %llu vs FIFO "
              "%llu\n",
              static_cast<unsigned long long>(wfq_t2_done),
              static_cast<unsigned long long>(fifo_t2_done));
  std::printf("  tenant-2 RU served: WFQ %.0f vs FIFO %.0f\n", wfq_t2_served,
              fifo_t2_served);
  std::printf("  tenant-2 mean queueing delay (ticks): WFQ %.2f vs FIFO "
              "%.2f\n",
              wfq_mean_wait, fifo_mean_wait);
  std::printf(
      " -> Per-class queues + quota-weighted VFT keep lightweight "
      "requests from waiting behind heavyweight ones (paper cites 2DFQ "
      "[27]).\n");
}

}  // namespace

int main() {
  bench::PrintHeader("Ablations: RU model and dual-layer WFQ");
  RunRuAblation();
  RunWfqVsFifo();
  return 0;
}
