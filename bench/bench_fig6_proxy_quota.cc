// Figure 6 reproduction: effectiveness of the proxy quota.
//
// Two tenants share one DataNode. Tenant 1's proxy quota starts
// disabled. At t=60s tenant 1 bursts far beyond its tenant quota; with
// no proxy interception the DataNode wastes CPU rejecting the flood and
// tenant 2's success QPS collapses. At t=120s tenant 1's proxy quota is
// enabled: excess traffic dies at the proxy, the DataNode recovers, and
// tenant 2 returns to pre-burst service.
#include <cstdio>

#include "bench/bench_util.h"
#include "sim/cluster_sim.h"

using namespace abase;

int main() {
  bench::PrintHeader("Figure 6: effectiveness of proxy quota");

  sim::SimOptions opts;
  opts.seed = 5;
  opts.node.wfq.cpu_budget_ru = 6000;    // One modest DataNode.
  opts.node.reject_cpu_ru = 0.25;        // Rejection is not free.
  opts.node.disk.read_iops_capacity = 1e6;
  sim::ClusterSim cluster(opts);
  PoolId pool = cluster.AddPool(1);  // Single shared DataNode.

  for (TenantId id = 1; id <= 2; id++) {
    meta::TenantConfig cfg;
    cfg.id = id;
    cfg.name = id == 1 ? "tenant1(bursting)" : "tenant2(victim)";
    cfg.tenant_quota_ru = 3000;
    cfg.num_partitions = 1;
    cfg.num_proxies = 2;
    cfg.num_proxy_groups = 1;
    cfg.replicas = 1;  // Single node hosts the only replica.
    (void)cluster.AddTenant(cfg, pool);

    sim::WorkloadProfile p;
    p.base_qps = 1000;
    p.read_ratio = 0.8;
    // Broad key space: most reads cost a full RU (engine work), so node
    // capacity is genuinely contended.
    p.num_keys = 500000;
    p.key_dist = sim::KeyDist::kUniform;
    p.value_bytes = 1024;
    // The burst: 40,000 QPS from t=60s to t=180s.
    if (id == 1) {
      p.bursts.push_back({60 * kMicrosPerSecond, 180 * kMicrosPerSecond,
                          40.0});
    }
    cluster.SetWorkload(id, p);
  }

  // Phase 1+2: tenant 1's proxy quota disabled (the paper's initial
  // condition).
  cluster.SetProxyQuotaEnabled(1, false);

  std::printf("%6s | %10s %10s %10s | %10s %10s %10s | %s\n", "tick",
              "T1 okQPS", "T1 errQPS", "T1 lat(us)", "T2 okQPS", "T2 errQPS",
              "T2 lat(us)", "phase");

  auto report = [&](size_t from, size_t to, const char* phase) {
    auto w1 = bench::Aggregate(cluster, 1, from, to);
    auto w2 = bench::Aggregate(cluster, 2, from, to);
    std::printf("%6zu | %10.0f %10.0f %10.0f | %10.0f %10.0f %10.0f | %s\n",
                to, w1.success_qps, w1.error_qps, w1.mean_latency_us,
                w2.success_qps, w2.error_qps, w2.mean_latency_us, phase);
  };

  // Phase 1: both tenants at low traffic.
  cluster.RunTicks(60);
  report(40, 60, "normal");
  auto baseline_t2 = bench::Aggregate(cluster, 2, 40, 60);

  // Phase 2: tenant 1 bursts; proxy quota still off.
  cluster.RunTicks(60);
  report(100, 120, "T1 burst, proxy quota OFF");
  auto burst_t2 = bench::Aggregate(cluster, 2, 100, 120);

  // Phase 3: enable tenant 1's proxy quota mid-burst.
  cluster.SetProxyQuotaEnabled(1, true);
  cluster.RunTicks(60);
  report(160, 180, "T1 burst, proxy quota ON");
  auto recovered_t2 = bench::Aggregate(cluster, 2, 160, 180);
  auto recovered_t1 = bench::Aggregate(cluster, 1, 160, 180);

  std::printf("\nShape checks vs paper Figure 6:\n");
  std::printf(
      " - T2 success during unprotected burst: %.0f qps vs %.0f baseline "
      "(paper: nearly zero) -> %s\n",
      burst_t2.success_qps, baseline_t2.success_qps,
      burst_t2.success_qps < 0.35 * baseline_t2.success_qps ? "COLLAPSED"
                                                            : "unexpected");
  std::printf(
      " - T2 success after proxy quota on: %.0f qps (paper: recovers to "
      "pre-burst) -> %s\n",
      recovered_t2.success_qps,
      recovered_t2.success_qps > 0.9 * baseline_t2.success_qps ? "RECOVERED"
                                                               : "unexpected");
  std::printf(
      " - T1 node-level errors after proxy on: %.0f qps (excess now dies "
      "at the proxy as throttles: %.0f qps)\n",
      recovered_t1.error_qps - recovered_t1.throttled_qps,
      recovered_t1.throttled_qps);
  return 0;
}
