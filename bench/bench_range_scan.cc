// Range-scan data path: cross-partition scan throughput and the payoff
// of prefix-subtree cutover invalidation over a full cache flush.
//
// Part 1 — scan throughput. A closed-loop async client fleet keeps
// prefix scans in flight against a preloaded tenant with the proxy
// cache disabled, so every scan exercises the full path: proxy RU
// estimate -> per-partition fan-out -> resumable LsmEngine::ScanRange
// morsels -> key-ordered merge -> settlement. Gates: every scan returns
// a complete, correctly framed result, and the wall-clock entry
// throughput clears a conservative floor.
//
// Part 2 — split-cutover invalidation. The same scan-heavy workload
// runs through an online partition split under the two cutover modes:
// kFullFlush (drop the whole proxy content store) vs kPrefixSubtree
// (drop only cached scan payloads — point entries survive, since a
// split moves routing, not values). The gate compares the proxy hit
// ratio in the recovery window right after cutover: the prefix-tree
// mode must keep >= 2x the full-flush hit ratio.
//
// Part 3 — determinism. The split scenario is replayed at 2 and 4
// data-plane workers and must reproduce the 1-worker metric digest
// bit-for-bit (the golden-digest contract, sampled here as a bench
// gate so perf runs also prove it).
//
// Writes BENCH_range_scan.json at the repo root (committed per PR; the
// `hardware_threads` field lets consumers discount parallel results on
// small containers).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/scan_codec.h"
#include "core/abase.h"

namespace abase {
namespace bench {
namespace {

// ------------------------------------------------- Part 1: throughput --

constexpr uint64_t kKeySpace = 10000;
constexpr uint64_t kValueBytes = 128;
constexpr uint32_t kScanLimit = 100;

struct ThroughputRun {
  uint64_t scans_completed = 0;
  uint64_t scan_errors = 0;
  uint64_t entries = 0;
  uint64_t short_results = 0;  ///< Scans that returned < kScanLimit rows.
  size_t ticks = 0;
  double scans_per_tick = 0;
  double wall_entries_per_sec = 0;
};

ThroughputRun RunScanThroughput(size_t num_clients, size_t depth,
                                size_t ticks) {
  ClusterOptions copts;
  copts.sim.seed = 31;
  meta::TenantConfig cfg;
  cfg.id = 1;
  cfg.name = "scan-bench";
  cfg.tenant_quota_ru = 5e6;  // Ample: measure the path, not admission.
  cfg.num_partitions = 8;
  cfg.num_proxies = 4;
  cfg.num_proxy_groups = 2;

  Cluster cluster(copts);
  PoolId pool = cluster.CreatePool(8);
  (void)cluster.CreateTenant(cfg, pool);
  cluster.sim().PreloadKeys(1, kKeySpace, kValueBytes);
  // Cache off: every scan must run the fan-out/merge machinery.
  cluster.sim().SetProxyCacheEnabled(1, false);

  std::vector<Client> clients;
  clients.reserve(num_clients);
  for (size_t c = 0; c < num_clients; c++) {
    clients.push_back(cluster.OpenClient(1));
  }
  std::vector<std::vector<Future<Reply>>> outstanding(num_clients);
  std::vector<int> next_seq(num_clients, 0);
  // Prefixes "t1:k1".."t1:k9" each cover 1111 keys (k<d>, k<d>x, k<d>xx,
  // k<d>xxx — decimal keys carry no leading zeros, so "k0" would match
  // only the single key k0) — far more rows than the limit, so every
  // result should be full.
  auto submit_one = [&](size_t c) {
    int seq = next_seq[c]++;
    std::string prefix =
        "t1:k" + std::to_string((c * 7 + static_cast<size_t>(seq)) % 9 + 1);
    outstanding[c].push_back(
        clients[c].Submit(Command::ScanPrefix(std::move(prefix), kScanLimit)));
  };
  for (size_t c = 0; c < num_clients; c++) {
    for (size_t d = 0; d < depth; d++) submit_one(c);
  }

  ThroughputRun run;
  run.ticks = ticks;
  auto wall_start = std::chrono::steady_clock::now();
  for (size_t tick = 0; tick < ticks; tick++) {
    cluster.Step();
    for (size_t c = 0; c < num_clients; c++) {
      auto& fs = outstanding[c];
      for (size_t i = 0; i < fs.size();) {
        if (fs[i].ready()) {
          const Reply& r = fs[i].value();
          if (r.ok()) {
            run.scans_completed++;
            size_t n = CountScanEntries(r.value);
            run.entries += n;
            if (n < kScanLimit) run.short_results++;
          } else {
            run.scan_errors++;
          }
          fs.erase(fs.begin() + static_cast<long>(i));
          submit_one(c);  // Closed loop: keep `depth` in flight.
        } else {
          i++;
        }
      }
    }
  }
  double wall_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  run.scans_per_tick = ticks == 0 ? 0
                                  : static_cast<double>(run.scans_completed) /
                                        static_cast<double>(ticks);
  run.wall_entries_per_sec =
      wall_secs <= 0 ? 0 : static_cast<double>(run.entries) / wall_secs;
  return run;
}

// --------------------------------------- Part 2: cutover invalidation --

struct SplitRun {
  size_t cutover_tick = 0;
  double steady_hit_ratio = 0;    ///< Before the split starts.
  double recovery_hit_ratio = 0;  ///< The 2 ticks right after cutover.
  uint64_t digest = 0;            ///< FNV fold of the metric history.
};

SplitRun RunSplitMode(sim::ProxyInvalidationMode mode, int workers) {
  sim::SimOptions opts;
  opts.seed = 47;
  opts.data_plane_workers = workers;
  opts.split_bytes_per_tick = 64 << 10;
  opts.split_invalidation = mode;
  sim::ClusterSim sim(opts);
  PoolId pool = sim.AddPool(8);

  meta::TenantConfig cfg;
  cfg.id = 1;
  cfg.name = "split-scan";
  cfg.tenant_quota_ru = 1e6;
  cfg.num_partitions = 4;
  cfg.num_proxies = 4;
  cfg.num_proxy_groups = 2;
  (void)sim.AddTenant(cfg, pool);
  sim.PreloadKeys(1, 4000, kValueBytes);

  sim::WorkloadProfile p;
  p.base_qps = 2000;
  p.read_ratio = 0.95;
  p.num_keys = 4000;
  p.zipf_theta = 0.99;  // Hot keyspace: the content store matters.
  p.value_bytes = kValueBytes;
  p.scan_fraction = 0.1;
  p.scan_limit = 20;
  sim.SetWorkload(1, p);

  SplitRun run;
  constexpr size_t kSplitAt = 10, kTotal = 32;
  for (size_t tick = 0; tick < kTotal; tick++) {
    if (tick == kSplitAt) (void)sim.StartPartitionSplit(1);
    sim.Tick();
    if (run.cutover_tick == 0 && sim.SplitCutovers() == 1) {
      run.cutover_tick = tick;
    }
  }

  auto hit_ratio = [&](size_t from, size_t to) {
    const auto& h = sim.History(1);
    if (to > h.size()) to = h.size();
    uint64_t hits = 0, reads = 0;
    for (size_t i = from; i < to; i++) {
      hits += h[i].proxy_hits;
      reads += h[i].proxy_hits + h[i].reads_completed;
    }
    return reads == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(reads);
  };
  run.steady_hit_ratio = hit_ratio(4, kSplitAt);
  // Recovery window: the content store was invalidated at cutover
  // (during that tick's Control stage), so the two following ticks show
  // what the chosen mode preserved.
  run.recovery_hit_ratio =
      hit_ratio(run.cutover_tick + 1, run.cutover_tick + 3);

  uint64_t d = 0xcbf29ce484222325ull;
  auto fold = [&d](uint64_t v) {
    for (int i = 0; i < 8; i++) {
      d ^= (v >> (8 * i)) & 0xff;
      d *= 0x100000001b3ull;
    }
  };
  for (const auto& m : sim.History(1)) {
    fold(m.issued);
    fold(m.ok);
    fold(m.errors);
    fold(m.redirects);
    fold(m.proxy_hits);
    fold(m.reads_completed);
    uint64_t ru_bits;
    static_assert(sizeof(ru_bits) == sizeof(m.ru_charged), "");
    std::memcpy(&ru_bits, &m.ru_charged, sizeof(ru_bits));
    fold(ru_bits);
  }
  run.digest = d;
  return run;
}

}  // namespace
}  // namespace bench
}  // namespace abase

int main() {
  using abase::bench::RunScanThroughput;
  using abase::bench::RunSplitMode;
  using abase::bench::SplitRun;
  using abase::bench::ThroughputRun;
  using abase::sim::ProxyInvalidationMode;

  const unsigned hw = std::thread::hardware_concurrency();
  abase::bench::PrintHeader(
      "Range-scan data path: fan-out throughput + cutover invalidation "
      "(hardware threads: " +
      std::to_string(hw) + ")");

  // Part 1: cross-partition scan throughput, proxy cache off.
  ThroughputRun t = RunScanThroughput(/*num_clients=*/16, /*depth=*/4,
                                      /*ticks=*/40);
  std::printf(
      "scan fan-out: %llu scans (%0.1f/tick), %llu entries, "
      "%llu errors, %llu short results, %.0f entries/sec wall\n",
      static_cast<unsigned long long>(t.scans_completed), t.scans_per_tick,
      static_cast<unsigned long long>(t.entries),
      static_cast<unsigned long long>(t.scan_errors),
      static_cast<unsigned long long>(t.short_results),
      t.wall_entries_per_sec);
  // Completeness: every scan ok and full (the prefixes cover ~1000 rows
  // each, 10x the limit). Floor: conservative even for a loaded 1-core
  // CI container — a healthy run measures well above it.
  constexpr double kEntriesPerSecFloor = 20000;
  bool throughput_ok = t.scan_errors == 0 && t.short_results == 0 &&
                       t.scans_completed > 0 &&
                       t.wall_entries_per_sec >= kEntriesPerSecFloor;

  // Part 2: what each cutover mode preserves.
  SplitRun flush = RunSplitMode(ProxyInvalidationMode::kFullFlush, 1);
  SplitRun subtree = RunSplitMode(ProxyInvalidationMode::kPrefixSubtree, 1);
  double advantage = flush.recovery_hit_ratio > 0
                         ? subtree.recovery_hit_ratio /
                               flush.recovery_hit_ratio
                         : (subtree.recovery_hit_ratio > 0 ? 1e9 : 0);
  std::printf(
      "split cutover (tick %zu): steady hit %.1f%% | recovery hit "
      "full-flush %.1f%% vs prefix-subtree %.1f%% -> %.1fx "
      "(acceptance: >= 2x)\n",
      subtree.cutover_tick, subtree.steady_hit_ratio * 100,
      flush.recovery_hit_ratio * 100, subtree.recovery_hit_ratio * 100,
      advantage);
  bool invalidation_ok = subtree.cutover_tick > 0 &&
                         flush.cutover_tick == subtree.cutover_tick &&
                         advantage >= 2.0;

  // Part 3: worker-count invariance of the split scenario.
  bool deterministic = true;
  for (int workers : {2, 4}) {
    SplitRun r = RunSplitMode(ProxyInvalidationMode::kPrefixSubtree, workers);
    bool same = r.digest == subtree.digest;
    deterministic = deterministic && same;
    std::printf("determinism @%d workers: %s\n", workers,
                same ? "bit-identical" : "MISMATCH");
  }

  const std::string json_path =
      abase::bench::RepoRootPath("BENCH_range_scan.json");
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f != nullptr) {
    std::fprintf(
        f,
        "{\"bench\":\"range_scan\",\"hardware_threads\":%u,"
        "\"scans_completed\":%llu,\"scans_per_tick\":%.2f,"
        "\"scan_entries\":%llu,\"scan_errors\":%llu,"
        "\"short_results\":%llu,\"wall_entries_per_sec\":%.0f,"
        "\"entries_per_sec_floor\":%.0f,"
        "\"split\":{\"cutover_tick\":%zu,\"steady_hit_ratio\":%.4f,"
        "\"recovery_hit_full_flush\":%.4f,"
        "\"recovery_hit_prefix_subtree\":%.4f,\"advantage\":%.2f},"
        "\"deterministic_across_workers\":%s,"
        "\"gates\":{\"throughput\":%s,\"invalidation\":%s}}\n",
        hw, static_cast<unsigned long long>(t.scans_completed),
        t.scans_per_tick, static_cast<unsigned long long>(t.entries),
        static_cast<unsigned long long>(t.scan_errors),
        static_cast<unsigned long long>(t.short_results),
        t.wall_entries_per_sec, kEntriesPerSecFloor, subtree.cutover_tick,
        subtree.steady_hit_ratio, flush.recovery_hit_ratio,
        subtree.recovery_hit_ratio, advantage,
        deterministic ? "true" : "false", throughput_ok ? "true" : "false",
        invalidation_ok ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return throughput_ok && invalidation_ok && deterministic ? 0 : 1;
}
