// Ablation: the ensemble forecaster vs its components (Section 5.2).
//
// Four series families exercise the paper's three issues: clean daily
// periodicity, odd 3.5-day periods, trend shifts, and consistent
// non-periodic bursts. For each, the harness backtests ProphetLite
// alone, historical average alone, and the full ensemble (denoise +
// changepoint truncation + weighted blend + burst fallback), reporting
// forecast MAE on a 7-day holdout plus the max-underprediction that
// drives throttling risk.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "forecast/ensemble.h"
#include "forecast/historical_average.h"
#include "forecast/prophet_lite.h"
#include "forecast/psd.h"
#include "sim/workload.h"

using namespace abase;

namespace {

struct Case {
  std::string name;
  TimeSeries series;  // 37 days: 30 train + 7 holdout.
};

double Mae(const TimeSeries& pred, const TimeSeries& truth) {
  size_t n = std::min(pred.size(), truth.size());
  double s = 0;
  for (size_t i = 0; i < n; i++) s += std::fabs(pred[i] - truth[i]);
  return n > 0 ? s / static_cast<double>(n) : 0;
}

/// How far the forecast's max undershoots the truth's max (throttling
/// risk; positive = dangerous underprediction).
double MaxUnderprediction(const TimeSeries& pred, const TimeSeries& truth) {
  return truth.Max() - pred.Max();
}

}  // namespace

int main() {
  bench::PrintHeader("Ablation: ensemble forecasting vs components");

  Rng rng(99);
  std::vector<Case> cases;
  {
    sim::SeriesSpec s;
    s.hours = 37 * 24;
    s.base = 1000;
    s.seasons.push_back({24, 300});
    s.noise_sigma = 25;
    cases.push_back({"daily period", sim::GenerateSeries(s, rng)});
  }
  {
    sim::SeriesSpec s;  // The paper's odd 3.5-day TTL period.
    s.hours = 37 * 24;
    s.base = 1000;
    s.seasons.push_back({84, 350});
    s.noise_sigma = 25;
    cases.push_back({"3.5-day period", sim::GenerateSeries(s, rng)});
  }
  {
    sim::SeriesSpec s;  // Trend shift 10 days before the end of training.
    s.hours = 37 * 24;
    s.base = 800;
    s.seasons.push_back({24, 150});
    s.noise_sigma = 20;
    s.level_shift_at_hour = 20 * 24;
    s.level_shift_factor = 2.2;
    cases.push_back({"trend shift", sim::GenerateSeries(s, rng)});
  }
  {
    sim::SeriesSpec s;  // Non-periodic daily bursts at random hours.
    s.hours = 37 * 24;
    s.base = 500;
    s.noise_sigma = 15;
    for (size_t day = 0; day < 37; day++) {
      s.bursts.push_back({day * 24 + 4 + rng.NextUint64(16), 2, 1800.0});
    }
    cases.push_back({"non-periodic bursts", sim::GenerateSeries(s, rng)});
  }

  std::printf("%-22s | %10s %10s %10s | %s\n", "series", "Prophet",
              "HistAvg", "Ensemble", "max-underpred (Ens)");
  for (const auto& c : cases) {
    const size_t horizon = 7 * 24;
    std::vector<double> head(c.series.values().begin(),
                             c.series.values().end() -
                                 static_cast<ptrdiff_t>(horizon));
    TimeSeries train(std::move(head));
    TimeSeries truth = c.series.Tail(horizon);

    double period = forecast::DetectDominantPeriod(train);

    forecast::ProphetOptions popt;
    popt.period_samples = period;
    double prophet_mae = 1e18;
    auto pfit = forecast::ProphetLite::Fit(train, popt);
    if (pfit.ok()) prophet_mae = Mae(pfit.value().Forecast(horizon), truth);

    forecast::HistoricalAverage hmodel(train, period);
    double hist_mae = Mae(hmodel.Forecast(horizon), truth);

    double ens_mae = 1e18, under = 0;
    auto ens = forecast::EnsembleForecast(train, TimeSeries(), horizon);
    if (ens.ok()) {
      ens_mae = Mae(ens.value().prediction, truth);
      under = MaxUnderprediction(ens.value().prediction, truth);
      if (ens.value().burst_fallback) {
        under = truth.Max() - ens.value().predicted_max;
      }
    }
    std::printf("%-22s | %10.1f %10.1f %10.1f | %18.1f\n", c.name.c_str(),
                prophet_mae, hist_mae, ens_mae, under);
  }
  std::printf(
      "\n -> The ensemble should be at or near the best component on every "
      "family and, via the burst fallback, avoid the large max-"
      "underprediction that pure models show on non-periodic bursts "
      "(Issue 3).\n");
  return 0;
}
