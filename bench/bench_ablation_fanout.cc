// Ablation: the limited fan-out parameter n (Section 4.4).
//
// "Because each proxy receives 1/n of the total requests, a larger n
// results in a higher cache hit ratio for each proxy. During hot key
// events, selecting a smaller n facilitates load distribution across a
// larger number of proxies (= N/n)."
//
// The harness sweeps n for a fixed fleet of N proxies and reports both
// sides of the trade-off: aggregate proxy cache hit ratio, and the
// hottest single proxy's share of a hot key's traffic.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "sim/cluster_sim.h"

using namespace abase;

int main() {
  bench::PrintHeader("Ablation: limited fan-out hash parameter n");

  const uint32_t kProxies = 24;
  std::printf("%8s %10s | %14s | %22s\n", "n", "fanout/key", "proxy hit%",
              "hot-key max proxy share");

  for (uint32_t n : {1u, 2u, 4u, 8u, 12u, 24u}) {
    sim::SimOptions opts;
    opts.seed = 55;
    opts.node.wfq.cpu_budget_ru = 200000;
    opts.proxy.cache.capacity_bytes = 128ull << 10;  // Tight proxy memory.
    sim::ClusterSim cluster(opts);
    PoolId pool = cluster.AddPool(4);

    meta::TenantConfig cfg;
    cfg.id = 1;
    cfg.name = "fanout-sweep";
    cfg.tenant_quota_ru = 1e6;
    cfg.num_partitions = 8;
    cfg.num_proxies = kProxies;
    cfg.num_proxy_groups = n;
    (void)cluster.AddTenant(cfg, pool);

    sim::WorkloadProfile p;
    p.base_qps = 5000;
    p.read_ratio = 1.0;
    p.num_keys = 20000;
    p.key_dist = sim::KeyDist::kHotSpot;  // One dominant hot key...
    p.hot_fraction = 1.0 / 20000;         // exactly 1 key...
    p.hot_share = 0.3;                    // ...taking 30% of traffic.
    p.value_bytes = 256;
    cluster.SetWorkload(1, p);
    bench::PreloadTenant(cluster, 1, p.num_keys, p.value_bytes);

    cluster.RunTicks(60);

    // Aggregate proxy hit ratio.
    uint64_t proxy_hits = 0, reads = 0;
    const auto& h = cluster.History(1);
    for (size_t i = 20; i < h.size(); i++) {
      proxy_hits += h[i].proxy_hits;
      reads += h[i].proxy_hits + h[i].reads_completed;
    }
    double hit =
        reads == 0 ? 0 : 100.0 * static_cast<double>(proxy_hits) /
                             static_cast<double>(reads);

    // Hot-key concentration: requests for the hot key per proxy.
    const auto* rt = cluster.Tenant(1);
    uint64_t hot_total = 0, hot_max = 0;
    for (const auto& px : rt->proxies) {
      // Hot key is t1:k0; probe each proxy's request counter via its
      // cache stats — instead measure by routing simulation:
      (void)px;
    }
    // Directly measure the router's spread for the hot key.
    Rng probe_rng(7);
    std::vector<uint64_t> per_proxy(kProxies, 0);
    for (int i = 0; i < 100000; i++) {
      per_proxy[rt->router->Route("t1:k0", probe_rng)]++;
      hot_total++;
    }
    for (uint64_t c : per_proxy) hot_max = std::max(hot_max, c);
    double max_share = 100.0 * static_cast<double>(hot_max) /
                       static_cast<double>(hot_total);

    std::printf("%8u %10u | %13.1f%% | %20.1f%%\n", n,
                rt->router->FanoutPerKey(), hit, max_share);
  }

  std::printf(
      "\n -> Trade-off per the paper: hit ratio grows with n while a hot "
      "key concentrates on fewer proxies (max share ~ n/N); operators pick "
      "n per tenant.\n");
  return 0;
}
