// Ablation: the migration gain function (Section 5.3).
//
// Algorithm 2 accepts a move when it reduces max[L(src), L(dst)], the
// larger of the two nodes' L2 deviations from the pool optimal across
// BOTH resource dimensions. The baseline compared here is the obvious
// greedy heuristic — always move the hottest replica from the most
// RU-loaded node to the least RU-loaded node — which ignores the storage
// dimension and can park RU-balanced-but-storage-heavy replicas onto
// already-full disks.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "resched/rescheduler.h"

using namespace abase;

namespace {

resched::PoolModel BuildDiversePool(uint64_t seed) {
  resched::PoolModel pool;
  const int kNodes = 120;
  for (NodeId i = 0; i < kNodes; i++) pool.AddNode(i, 10000, 4e9);
  Rng rng(seed);
  uint32_t pid = 0;
  for (int t = 0; t < 24; t++) {
    double style = rng.NextDouble();
    double ru, sto;
    if (style < 0.33) {
      ru = rng.NextLogNormal(std::log(900), 0.5);
      sto = rng.NextLogNormal(std::log(4e7), 0.6);
    } else if (style < 0.66) {
      ru = rng.NextLogNormal(std::log(120), 0.5);
      sto = rng.NextLogNormal(std::log(4e8), 0.5);
    } else {
      ru = rng.NextLogNormal(std::log(400), 0.5);
      sto = rng.NextLogNormal(std::log(1.5e8), 0.5);
    }
    NodeId base = static_cast<NodeId>(rng.NextUint64(kNodes));
    for (int r = 0; r < 30; r++) {
      resched::ReplicaLoad load;
      load.tenant = static_cast<TenantId>(t + 1);
      load.partition = pid++;
      load.ru = LoadVector::Constant(ru);
      load.storage = LoadVector::Constant(sto);
      NodeId target =
          (base + static_cast<NodeId>(rng.NextUint64(10))) % kNodes;
      pool.nodes()[target].AddReplica(std::move(load));
    }
  }
  return pool;
}

/// Greedy baseline: move the largest-RU replica from the most-loaded
/// node (by RU) to the least-loaded node (by RU), same safety rules,
/// until no legal move reduces the RU spread. Storage is ignored.
size_t RunGreedy(resched::PoolModel* pool, size_t max_moves = 4000) {
  size_t moves = 0;
  while (moves < max_moves) {
    resched::NodeModel* hot = nullptr;
    resched::NodeModel* cold = nullptr;
    for (auto& n : pool->nodes()) {
      if (hot == nullptr || n.Utilization(resched::Resource::kRu) >
                                hot->Utilization(resched::Resource::kRu)) {
        hot = &n;
      }
      if (cold == nullptr || n.Utilization(resched::Resource::kRu) <
                                 cold->Utilization(resched::Resource::kRu)) {
        cold = &n;
      }
    }
    if (hot == nullptr || cold == nullptr || hot == cold) break;

    const resched::ReplicaLoad* pick = nullptr;
    for (const auto& re : hot->replicas()) {
      if (cold->HasReplicaOf(re.tenant, re.partition)) continue;
      if (pick == nullptr || re.ru.MaxLoad() > pick->ru.MaxLoad()) {
        pick = &re;
      }
    }
    if (pick == nullptr) break;
    // Only move if it actually narrows the RU gap.
    double gap_before = hot->Utilization(resched::Resource::kRu) -
                        cold->Utilization(resched::Resource::kRu);
    double gap_after =
        hot->UtilizationWithout(resched::Resource::kRu, *pick) -
        cold->UtilizationWith(resched::Resource::kRu, *pick);
    if (std::fabs(gap_after) >= gap_before) break;
    auto taken =
        hot->RemoveReplica(pick->tenant, pick->partition, pick->replica_index);
    if (!taken.ok()) break;
    cold->AddReplica(std::move(taken).value());
    moves++;
  }
  return moves;
}

void Report(const char* label, const resched::PoolModel& pool,
            size_t moves) {
  std::printf("%-28s moves=%5zu | RU stddev=%.4f max=%.3f | storage "
              "stddev=%.4f max=%.3f\n",
              label, moves,
              pool.UtilizationStddev(resched::Resource::kRu),
              pool.MaxUtilization(resched::Resource::kRu),
              pool.UtilizationStddev(resched::Resource::kStorage),
              pool.MaxUtilization(resched::Resource::kStorage));
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation: migration gain function vs greedy RU-only heuristic");

  for (uint64_t seed : {11ull, 22ull, 33ull}) {
    std::printf("\nseed %llu\n", static_cast<unsigned long long>(seed));
    resched::PoolModel before = BuildDiversePool(seed);
    Report("  initial", before, 0);

    resched::PoolModel greedy = BuildDiversePool(seed);
    size_t gmoves = RunGreedy(&greedy);
    Report("  greedy RU-only", greedy, gmoves);

    resched::PoolModel alg2 = BuildDiversePool(seed);
    resched::IntraPoolRescheduler rescheduler;
    size_t amoves = rescheduler.RunToConvergence(&alg2).size();
    Report("  Algorithm 2 (L2 gain)", alg2, amoves);
  }

  std::printf(
      "\n -> The L2-deviation gain balances BOTH dimensions at once: the "
      "greedy RU-only baseline narrows RU spread but leaves (or worsens) "
      "storage imbalance, which is exactly the multi-resource trap the "
      "paper's gain function avoids.\n");
  return 0;
}
