// Google-benchmark microbenchmarks for the building blocks: storage
// engine point ops, caches, WFQ scheduling, RU estimation, bloom probes,
// and the rescheduler's gain evaluation.
#include <benchmark/benchmark.h>

#include <string>

#include "cache/au_lru.h"
#include "cache/lru_cache.h"
#include "cache/sa_lru.h"
#include "common/clock.h"
#include "common/rng.h"
#include "resched/pool_model.h"
#include "ru/request_unit.h"
#include "sched/wfq_queue.h"
#include "storage/bloom.h"
#include "storage/lsm_engine.h"

using namespace abase;

namespace {

void BM_LsmPut(benchmark::State& state) {
  SimClock clock;
  storage::LsmEngine engine(storage::LsmOptions{}, &clock);
  Rng rng(1);
  std::string value(static_cast<size_t>(state.range(0)), 'v');
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.Put("key" + std::to_string(i++ % 100000), value));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_LsmPut)->Arg(128)->Arg(1024)->Arg(8192);

void BM_LsmGetHot(benchmark::State& state) {
  SimClock clock;
  storage::LsmEngine engine(storage::LsmOptions{}, &clock);
  for (int i = 0; i < 10000; i++) {
    (void)engine.Put("key" + std::to_string(i), std::string(256, 'v'));
  }
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.Get("key" + std::to_string(rng.NextUint64(10000))));
  }
}
BENCHMARK(BM_LsmGetHot);

void BM_BloomProbe(benchmark::State& state) {
  storage::BloomFilter bloom(100000);
  for (int i = 0; i < 100000; i++) bloom.Add("key" + std::to_string(i));
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bloom.MayContain("key" + std::to_string(rng.NextUint64(200000))));
  }
}
BENCHMARK(BM_BloomProbe);

void BM_LruGet(benchmark::State& state) {
  cache::LruCache cache(64 << 20);
  for (int i = 0; i < 50000; i++) {
    cache.Put("key" + std::to_string(i), std::string(128, 'v'), 160);
  }
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.Get("key" + std::to_string(rng.NextUint64(50000))));
  }
}
BENCHMARK(BM_LruGet);

void BM_SaLruGet(benchmark::State& state) {
  cache::SaLruOptions opts;
  opts.capacity_bytes = 64 << 20;
  cache::SaLruCache cache(opts);
  for (int i = 0; i < 50000; i++) {
    cache.Put("key" + std::to_string(i), std::string(128, 'v'), 160);
  }
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.Get("key" + std::to_string(rng.NextUint64(50000))));
  }
}
BENCHMARK(BM_SaLruGet);

void BM_AuLruGet(benchmark::State& state) {
  SimClock clock;
  cache::AuLruOptions opts;
  opts.capacity_bytes = 64 << 20;
  cache::AuLruCache cache(opts, &clock);
  for (int i = 0; i < 50000; i++) {
    cache.Put("key" + std::to_string(i), std::string(128, 'v'), 160);
  }
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.Get("key" + std::to_string(rng.NextUint64(50000))));
  }
}
BENCHMARK(BM_AuLruGet);

void BM_WfqPushPop(benchmark::State& state) {
  sched::WfqQueue queue;
  Rng rng(7);
  uint64_t id = 0;
  for (auto _ : state) {
    sched::SchedRequest req;
    req.req_id = id++;
    req.tenant = static_cast<TenantId>(rng.NextUint64(16));
    req.cpu_cost_ru = 1.0 + rng.NextDouble() * 9;
    req.quota_share = 0.0625;
    queue.Push(req, req.cpu_cost_ru);
    benchmark::DoNotOptimize(queue.Pop());
  }
}
BENCHMARK(BM_WfqPushPop);

void BM_RuEstimate(benchmark::State& state) {
  ru::RuEstimator est;
  Rng rng(8);
  for (auto _ : state) {
    est.ChargeRead(64 + rng.NextUint64(8192),
                   rng.NextBool(0.8) ? ru::ReadServedBy::kDataNodeCache
                                     : ru::ReadServedBy::kDisk);
    benchmark::DoNotOptimize(est.EstimateReadRu());
  }
}
BENCHMARK(BM_RuEstimate);

void BM_MigrationGainEval(benchmark::State& state) {
  resched::NodeModel src(1, 10000, 1e12), dst(2, 10000, 1e12);
  Rng rng(9);
  resched::ReplicaLoad replica;
  for (int h = 0; h < 24; h++) replica.ru.v[h] = rng.NextDouble() * 500;
  replica.storage = LoadVector::Constant(1e9);
  for (int i = 0; i < 20; i++) {
    resched::ReplicaLoad r = replica;
    r.partition = static_cast<PartitionId>(i);
    src.AddReplica(r);
  }
  for (auto _ : state) {
    double before = std::max(src.Deviation(0.5, 0.5),
                             dst.Deviation(0.5, 0.5));
    double after = std::max(src.DeviationWithout(replica, 0.5, 0.5),
                            dst.DeviationWith(replica, 0.5, 0.5));
    benchmark::DoNotOptimize(before - after);
  }
}
BENCHMARK(BM_MigrationGainEval);

}  // namespace

BENCHMARK_MAIN();
