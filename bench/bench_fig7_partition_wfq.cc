// Figure 7 reproduction: effectiveness of partition quota + dual-layer
// WFQ.
//
// Two tenants on one DataNode. At t=60s tenant 1 directs a skewed burst
// at a single partition — below its tenant quota, so the proxy admits it
// all. With partition quota disabled, the WFQ alone keeps tenant 2's
// latency flat (its success dips toward its fair share, ~-25%) while
// tenant 1's own latency balloons (the node must absorb everything). At
// t=120s the partition quota is enabled: tenant 1's success drops to the
// partition quota (3000 RU/s here), the excess becomes error QPS, and
// tenant 2 returns to full service — with low latency throughout.
#include <cstdio>

#include "bench/bench_util.h"
#include "sim/cluster_sim.h"

using namespace abase;

int main() {
  bench::PrintHeader("Figure 7: partition quota + dual-layer WFQ");

  sim::SimOptions opts;
  opts.seed = 6;
  opts.node.wfq.cpu_budget_ru = 12000;
  opts.node.reject_cpu_ru = 0.25;
  opts.node.disk.read_iops_capacity = 1e6;
  sim::ClusterSim cluster(opts);
  PoolId pool = cluster.AddPool(1);

  {  // Tenant 1: large quota, 8 partitions (partition quota 3000).
    meta::TenantConfig cfg;
    cfg.id = 1;
    cfg.name = "tenant1(skewed)";
    cfg.tenant_quota_ru = 24000;
    cfg.num_partitions = 8;
    cfg.num_proxies = 2;
    cfg.num_proxy_groups = 1;
    cfg.replicas = 1;
    (void)cluster.AddTenant(cfg, pool);
    sim::WorkloadProfile p;
    p.base_qps = 1000;
    p.read_ratio = 1.0;
    p.num_keys = 2000;
    p.zipf_theta = 0.85;
    p.value_bytes = 1024;
    cluster.SetWorkload(1, p);
  }
  {  // Tenant 2: steady mid-volume reads over a broad key set.
    meta::TenantConfig cfg;
    cfg.id = 2;
    cfg.name = "tenant2(victim)";
    cfg.tenant_quota_ru = 8000;
    cfg.num_partitions = 8;
    cfg.num_proxies = 2;
    cfg.num_proxy_groups = 1;
    cfg.replicas = 1;
    (void)cluster.AddTenant(cfg, pool);
    sim::WorkloadProfile p;
    p.base_qps = 4000;
    p.read_ratio = 0.7;
    p.num_keys = 2000000;  // Broad: mostly engine reads (~1 RU each).
    p.key_dist = sim::KeyDist::kUniform;
    p.value_bytes = 1024;
    cluster.SetWorkload(2, p);
  }

  // Start with partition quota disabled (paper's initial condition).
  cluster.SetPartitionQuotaEnabled(false);

  std::printf("%6s | %9s %9s %11s | %9s %9s %11s | %s\n", "tick", "T1 ok",
              "T1 err", "T1 lat(us)", "T2 ok", "T2 err", "T2 lat(us)",
              "phase");
  auto report = [&](size_t from, size_t to, const char* phase) {
    auto w1 = bench::Aggregate(cluster, 1, from, to);
    auto w2 = bench::Aggregate(cluster, 2, from, to);
    std::printf("%6zu | %9.0f %9.0f %11.0f | %9.0f %9.0f %11.0f | %s\n", to,
                w1.success_qps, w1.error_qps, w1.mean_latency_us,
                w2.success_qps, w2.error_qps, w2.mean_latency_us, phase);
    return std::make_pair(w1, w2);
  };

  // Phase 1: normal traffic.
  cluster.RunTicks(60);
  auto [p1_t1, p1_t2] = report(40, 60, "normal");

  // Phase 2: skewed burst — all of tenant 1's traffic hits ONE key
  // (hence one partition), at a volume below its tenant quota (24000), so
  // the proxy layer admits everything. A 50/50 read/write mix keeps the
  // node cache invalidated, so each request costs a full RU and the
  // skewed partition genuinely loads the node.
  {
    sim::WorkloadProfile* p = cluster.MutableWorkload(1);
    p->base_qps = 11000;
    p->key_dist = sim::KeyDist::kHotSpot;
    p->hot_fraction = 1e-9;  // Exactly one hot key...
    p->hot_share = 1.0;      // ...receiving all traffic.
    p->num_keys = 2000000;   // Cold remainder (unused at share 1.0).
    p->read_ratio = 0.5;
    p->value_bytes = 2048;
  }
  cluster.RunTicks(60);
  auto [p2_t1, p2_t2] = report(100, 120, "skewed burst, partition quota OFF");

  // Phase 3: enable the partition quota mid-burst.
  cluster.SetPartitionQuotaEnabled(true);
  cluster.RunTicks(60);
  auto [p3_t1, p3_t2] = report(160, 180, "skewed burst, partition quota ON");

  std::printf("\nShape checks vs paper Figure 7:\n");
  std::printf(
      " - Phase 2 T1 error QPS = %.0f (paper: zero — proxy admits all "
      "because traffic is under the tenant quota)\n",
      p2_t1.error_qps);
  std::printf(
      " - Phase 2 T2 success: %.0f vs %.0f baseline (paper: -25%%); "
      "T2 latency %.0fus vs %.0fus baseline (paper: unaffected)\n",
      p2_t2.success_qps, p1_t2.success_qps, p2_t2.mean_latency_us,
      p1_t2.mean_latency_us);
  std::printf(
      " - Phase 2 T1 latency: %.0fus vs %.0fus baseline (paper: ~20x "
      "increase) -> %.1fx\n",
      p2_t1.mean_latency_us, p1_t1.mean_latency_us,
      p2_t1.mean_latency_us / std::max(1.0, p1_t1.mean_latency_us));
  std::printf(
      " - Phase 3 T1 served RU/s ~ partition quota (3000 RU/s): %.0f "
      "(success QPS %.0f); excess rejected as errors: %.0f\n",
      p3_t1.ru_per_sec, p3_t1.success_qps, p3_t1.error_qps);
  std::printf(" - Phase 3 T2 success recovers: %.0f (baseline %.0f)\n",
              p3_t2.success_qps, p1_t2.success_qps);
  return 0;
}
