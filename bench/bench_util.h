// Shared helpers for the table/figure reproduction harnesses.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/cluster_sim.h"

namespace abase {
namespace bench {

inline void PrintHeader(const std::string& title) {
  std::printf("\n=============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("=============================================================\n");
}

/// Median of a sample set (sorts a copy; even counts take the mean of
/// the middle pair). Perf benches report the median of N repetitions so
/// one noisy run — a CI neighbor, a page-cache miss — does not define
/// the trend point.
inline double Median(std::vector<double> samples) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  size_t mid = samples.size() / 2;
  if (samples.size() % 2 == 1) return samples[mid];
  return 0.5 * (samples[mid - 1] + samples[mid]);
}

/// Resolves an output path at the repo root when the build system
/// provides it (ABASE_REPO_ROOT), else falls back to the working
/// directory. Benches run from the build tree, but trend records are
/// committed at the repo root.
inline std::string RepoRootPath(const std::string& filename) {
#ifdef ABASE_REPO_ROOT
  return std::string(ABASE_REPO_ROOT) + "/" + filename;
#else
  return filename;
#endif
}

/// Sub-tick latency percentile summary of a tick window, from the
/// timed-settle per-tick histogram estimates (TenantTickMetrics::
/// latency_p50/p95/p99). Each tick's estimate is weighted by that tick's
/// sample count, so idle ticks don't dilute the summary. All zeros when
/// the latency subsystem is disabled (SimOptions::latency.enabled).
struct WindowPercentiles {
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
};

inline WindowPercentiles PercentilesOver(
    const std::vector<sim::TenantTickMetrics>& history, size_t from,
    size_t to) {
  WindowPercentiles w;
  if (to > history.size()) to = history.size();
  double n = 0;
  for (size_t i = from; i < to; i++) {
    const auto& m = history[i];
    if (m.latency_count == 0 || m.latency_p99 <= 0) continue;
    double c = static_cast<double>(m.latency_count);
    w.p50_us += c * m.latency_p50;
    w.p95_us += c * m.latency_p95;
    w.p99_us += c * m.latency_p99;
    n += c;
  }
  if (n > 0) {
    w.p50_us /= n;
    w.p95_us /= n;
    w.p99_us /= n;
  }
  return w;
}

/// Aggregate of a tenant's metrics over a tick window.
struct WindowStats {
  double success_qps = 0;
  double error_qps = 0;
  double throttled_qps = 0;
  double cache_hit_ratio = 0;
  double mean_latency_us = 0;
  double ru_per_sec = 0;
  double read_ratio = 0;
  double mean_value_bytes = 0;
};

/// Aggregates History(tenant)[from, to) into one WindowStats.
inline WindowStats Aggregate(const sim::ClusterSim& cluster, TenantId tenant,
                             size_t from, size_t to) {
  WindowStats w;
  const auto& h = cluster.History(tenant);
  if (to > h.size()) to = h.size();
  if (from >= to) return w;
  uint64_t ok = 0, err = 0, thr = 0, proxy_hits = 0, node_hits = 0;
  uint64_t reads = 0, lat_n = 0, completed = 0;
  double lat_sum = 0, ru = 0;
  for (size_t i = from; i < to; i++) {
    const auto& t = h[i];
    ok += t.ok;
    err += t.errors;
    thr += t.throttled;
    proxy_hits += t.proxy_hits;
    node_hits += t.node_cache_hits;
    reads += t.reads_completed + t.proxy_hits;
    lat_sum += t.latency_sum;
    lat_n += t.latency_count;
    ru += t.ru_charged;
    completed += t.ok;
  }
  double secs = static_cast<double>(to - from);
  w.success_qps = static_cast<double>(ok) / secs;
  w.error_qps = static_cast<double>(err) / secs;
  w.throttled_qps = static_cast<double>(thr) / secs;
  w.cache_hit_ratio =
      reads == 0 ? 0
                 : static_cast<double>(proxy_hits + node_hits) /
                       static_cast<double>(reads);
  w.mean_latency_us = lat_n == 0 ? 0 : lat_sum / static_cast<double>(lat_n);
  w.ru_per_sec = ru / secs;
  w.read_ratio = completed == 0
                     ? 0
                     : static_cast<double>(reads) /
                           static_cast<double>(completed);
  return w;
}

/// Bulk-loads a tenant's key space (see ClusterSim::PreloadKeys).
inline void PreloadTenant(sim::ClusterSim& cluster, TenantId tenant,
                          uint64_t num_keys, uint64_t value_bytes,
                          double value_sigma = 0.3) {
  cluster.PreloadKeys(tenant, num_keys, value_bytes, value_sigma);
}

}  // namespace bench
}  // namespace abase
