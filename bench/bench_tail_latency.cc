// Tail latency under contention: clients × depth × hedging matrix.
//
// Closed-loop harness over the async command API: N client sessions each
// keep D eventual-consistency Gets in flight against one shared cluster
// with the sub-tick latency subsystem enabled (lognormal service times,
// cross-AZ RTT, timed Settle). The proxy read cache is disabled so every
// read pays a data-plane service-time draw — this bench measures the
// tail the hedging machinery exists to cut, not the cache.
//
// Each grid point runs twice, hedging off and on, and reports true
// p50/p95/p99 over the per-request sub-tick latencies (Reply::
// LatencyMicros) plus RU charged per completed op (hedges bill both
// legs, so the per-op RU is where their cost shows up).
//
// Acceptance gates, enforced by exit code at the contention point (the
// largest clients × depth grid cell):
//   1. p99/p50 > 3 with hedging off — the service-time distribution
//      must actually have a tail worth hedging.
//   2. Hedging cuts p99 by >= 20%.
//   3. Hedging raises RU per completed op by <= 10%.
//
// Writes BENCH_tail_latency.json (overwritten per run; CI archives
// BENCH_*.json as artifacts).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/abase.h"

namespace abase {
namespace bench {
namespace {

constexpr uint64_t kKeySpace = 2048;
constexpr uint64_t kValueBytes = 256;
constexpr size_t kWarmupTicks = 15;
constexpr size_t kMeasureTicks = 45;

meta::TenantConfig TailTenant() {
  meta::TenantConfig c;
  c.id = 1;
  c.name = "tail-bench";
  c.tenant_quota_ru = 2000000;  // Ample: measure the data plane, not admission.
  c.num_partitions = 16;
  c.num_proxies = 8;
  c.num_proxy_groups = 2;
  c.replicas = 3;
  return c;
}

Cluster MakeCluster(bool hedging) {
  ClusterOptions copts;
  copts.sim.seed = 23;
  copts.sim.node.wfq.cpu_budget_ru = 100000;
  copts.sim.node.ru_capacity = 100000;
  copts.sim.node.service_time.enabled = true;
  copts.sim.node.service_time.dist = latency::DistKind::kLognormal;
  copts.sim.node.service_time.mean_micros = 150;
  copts.sim.node.service_time.sigma = 1.2;
  copts.sim.latency.enabled = true;
  // Single-AZ deployment: every hop rides the 120us fabric. With 3 AZs
  // the 900us cross-AZ RTT lottery dominates the percentiles and buries
  // the service-time tail this bench (and hedging) is about.
  copts.sim.latency.num_azs = 1;
  copts.sim.latency.hedge.enabled = hedging;
  copts.sim.latency.hedge.min_observations = 32;
  copts.sim.latency.hedge.min_threshold_micros = 100;
  return Cluster(copts);
}

std::string KeyFor(int client, int seq) {
  return "t1:k" + std::to_string(
                      (static_cast<uint64_t>(client) * 131 + seq * 7) %
                      kKeySpace);
}

struct TailRun {
  size_t clients = 0;
  size_t depth = 0;
  bool hedging = false;
  uint64_t completed = 0;
  uint64_t errors = 0;
  uint64_t hedged = 0;
  uint64_t hedge_wins = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double ru_per_op = 0;
};

double PercentileOf(std::vector<uint64_t>& sorted, double pct) {
  if (sorted.empty()) return 0;
  size_t idx = static_cast<size_t>(
      static_cast<double>(sorted.size()) * pct / 100.0);
  return static_cast<double>(sorted[std::min(idx, sorted.size() - 1)]);
}

TailRun RunPoint(size_t num_clients, size_t depth, bool hedging) {
  Cluster cluster = MakeCluster(hedging);
  PoolId pool = cluster.CreatePool(8);
  (void)cluster.CreateTenant(TailTenant(), pool);
  cluster.sim().SetProxyCacheEnabled(1, false);
  cluster.sim().PreloadKeys(1, kKeySpace, kValueBytes);

  std::vector<Client> clients;
  clients.reserve(num_clients);
  for (size_t c = 0; c < num_clients; c++) {
    clients.push_back(cluster.OpenClient(1));
  }

  std::vector<std::vector<Future<Reply>>> outstanding(num_clients);
  std::vector<int> next_seq(num_clients, 0);
  auto submit_one = [&](size_t c) {
    int seq = next_seq[c]++;
    outstanding[c].push_back(clients[c].Submit(
        Command::GetEventual(KeyFor(static_cast<int>(c), seq))));
  };
  for (size_t c = 0; c < num_clients; c++) {
    for (size_t d = 0; d < depth; d++) submit_one(c);
  }

  TailRun run;
  run.clients = num_clients;
  run.depth = depth;
  run.hedging = hedging;
  std::vector<uint64_t> latencies;
  for (size_t tick = 0; tick < kWarmupTicks + kMeasureTicks; tick++) {
    bool measuring = tick >= kWarmupTicks;
    cluster.Step();
    for (size_t c = 0; c < num_clients; c++) {
      auto& fs = outstanding[c];
      for (size_t i = 0; i < fs.size();) {
        if (fs[i].ready()) {
          const Reply& r = fs[i].value();
          if (measuring) {
            if (r.ok() || r.status.IsNotFound()) {
              run.completed++;
              latencies.push_back(r.LatencyMicros());
            } else {
              run.errors++;
            }
          }
          fs.erase(fs.begin() + static_cast<long>(i));
          submit_one(c);  // Closed loop: keep `depth` in flight.
        } else {
          i++;
        }
      }
    }
  }

  double ru = 0;
  const auto& h = cluster.sim().History(1);
  for (size_t i = kWarmupTicks; i < h.size(); i++) {
    ru += h[i].ru_charged;
    run.hedged += h[i].hedged_reads;
    run.hedge_wins += h[i].hedge_wins;
  }
  run.ru_per_op = run.completed == 0 ? 0 : ru / static_cast<double>(run.completed);

  std::sort(latencies.begin(), latencies.end());
  run.p50 = PercentileOf(latencies, 50);
  run.p95 = PercentileOf(latencies, 95);
  run.p99 = PercentileOf(latencies, 99);
  return run;
}

}  // namespace
}  // namespace bench
}  // namespace abase

int main() {
  using abase::bench::RunPoint;
  using abase::bench::TailRun;

  abase::bench::PrintHeader(
      "Tail latency: clients x depth x hedging, sub-tick micros "
      "(lognormal service, proxy cache off, eventual reads)");

  const std::vector<size_t> client_counts = {8, 32, 64};
  const std::vector<size_t> depths = {1, 8};

  std::printf("%8s %6s %6s %10s %8s %8s %8s %9s %8s %8s\n", "clients",
              "depth", "hedge", "completed", "p50us", "p95us", "p99us",
              "ru/op", "hedged", "wins");
  std::vector<TailRun> runs;
  for (size_t clients : client_counts) {
    for (size_t depth : depths) {
      for (bool hedging : {false, true}) {
        TailRun r = RunPoint(clients, depth, hedging);
        std::printf("%8zu %6zu %6s %10llu %8.0f %8.0f %8.0f %9.3f %8llu "
                    "%8llu\n",
                    r.clients, r.depth, r.hedging ? "on" : "off",
                    static_cast<unsigned long long>(r.completed), r.p50,
                    r.p95, r.p99, r.ru_per_op,
                    static_cast<unsigned long long>(r.hedged),
                    static_cast<unsigned long long>(r.hedge_wins));
        runs.push_back(r);
      }
    }
  }

  // Gates at the contention point: largest clients x depth grid cell.
  const TailRun& off = runs[runs.size() - 2];
  const TailRun& on = runs[runs.size() - 1];
  double tail_ratio = off.p50 > 0 ? off.p99 / off.p50 : 0;
  double p99_cut = off.p99 > 0 ? 1.0 - on.p99 / off.p99 : 0;
  double ru_ratio = off.ru_per_op > 0 ? on.ru_per_op / off.ru_per_op : 0;

  bool tail_ok = tail_ratio > 3.0;
  bool cut_ok = p99_cut >= 0.20;
  bool ru_ok = ru_ratio <= 1.10;
  std::printf(
      "\ncontention point (%zu clients x depth %zu):\n"
      "  p99/p50 hedge-off: %.2f (acceptance: > 3)%s\n"
      "  hedging p99 cut: %.1f%% (acceptance: >= 20%%)%s\n"
      "  hedging RU/op ratio: %.3f (acceptance: <= 1.10)%s\n",
      off.clients, off.depth, tail_ratio, tail_ok ? "" : "  ** FAIL **",
      p99_cut * 100, cut_ok ? "" : "  ** FAIL **", ru_ratio,
      ru_ok ? "" : "  ** FAIL **");

  std::string path = abase::bench::RepoRootPath("BENCH_tail_latency.json");
  FILE* f = std::fopen(path.c_str(), "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\"bench\":\"tail_latency\",\"warmup_ticks\":%zu,"
                 "\"measure_ticks\":%zu,"
                 "\"tail_ratio_hedge_off\":%.3f,\"p99_cut_pct\":%.2f,"
                 "\"ru_per_op_ratio\":%.4f,"
                 "\"gates\":{\"tail_ratio_gt_3\":%s,"
                 "\"p99_cut_ge_20pct\":%s,\"ru_per_op_le_1_10\":%s},"
                 "\"results\":[",
                 abase::bench::kWarmupTicks, abase::bench::kMeasureTicks,
                 tail_ratio, p99_cut * 100, ru_ratio,
                 tail_ok ? "true" : "false", cut_ok ? "true" : "false",
                 ru_ok ? "true" : "false");
    for (size_t i = 0; i < runs.size(); i++) {
      const TailRun& r = runs[i];
      std::fprintf(f,
                   "%s{\"clients\":%zu,\"depth\":%zu,\"hedging\":%s,"
                   "\"completed\":%llu,\"errors\":%llu,"
                   "\"p50_us\":%.1f,\"p95_us\":%.1f,\"p99_us\":%.1f,"
                   "\"ru_per_op\":%.4f,\"hedged\":%llu,\"hedge_wins\":%llu}",
                   i == 0 ? "" : ",", r.clients, r.depth,
                   r.hedging ? "true" : "false",
                   static_cast<unsigned long long>(r.completed),
                   static_cast<unsigned long long>(r.errors), r.p50, r.p95,
                   r.p99, r.ru_per_op,
                   static_cast<unsigned long long>(r.hedged),
                   static_cast<unsigned long long>(r.hedge_wins));
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path.c_str());
  }

  bool pass = tail_ok && cut_ok && ru_ok;
  std::printf("tail latency gates: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
