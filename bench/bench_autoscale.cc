// Closed-loop autoscaling bench: a diurnal + daily-burst tenant driven
// through the live Control pipeline stage.
//
// Part 1 — the Figure 8b oncall ablation, closed-loop: the same
// workload is run under predictive (Algorithm 1 forecast) and reactive
// (threshold-on-current-usage) scaling. Gate: predictive autoscaling
// throttles fewer requests than the reactive baseline (it scales before
// the burst instead of after users feel it).
//
// Part 2 — online split cutover: tracked writes are acknowledged
// continuously while a staged split streams the re-hashed half of every
// parent partition out, cuts over, and purges. Gate: zero acknowledged
// writes are lost — every acked write reads back with its exact value
// through the re-hashed routing.
//
// Writes BENCH_autoscale.json; exits non-zero if either gate fails.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "meta/meta_server.h"
#include "sim/cluster_sim.h"
#include "sim/workload.h"

namespace abase {
namespace bench {

constexpr TenantId kTenant = 1;

meta::TenantConfig Tenant(double quota, uint32_t partitions, double upper) {
  meta::TenantConfig c;
  c.id = kTenant;
  c.name = "diurnal";
  c.tenant_quota_ru = quota;
  c.num_partitions = partitions;
  c.num_proxies = 2;
  c.num_proxy_groups = 1;
  c.partition_quota_upper = upper;
  c.partition_quota_lower = 1;
  return c;
}

// ------------------------------------------------------------- Part 1 --

struct AblationResult {
  uint64_t first_scale_up_tick = 0;
  uint64_t scale_ups = 0;
  uint64_t throttled = 0;
  uint64_t ok = 0;
  double final_quota = 0;
};

/// One closed-loop day (3 ticks = 1 control hour): diurnal base with a
/// 4x burst over hours 5-8, seeded with 30 days of matching history.
AblationResult RunAblation(sim::AutoscaleMode mode) {
  sim::SimOptions opt;
  opt.seed = 20250;
  opt.control_interval_ticks = 3;
  opt.control_ticks_per_hour = 3;
  sim::ClusterSim sim(opt);
  PoolId pool = sim.AddPool(6);
  const double kInitialQuota = 700;
  (void)sim.AddTenant(Tenant(kInitialQuota, 4, 1e9), pool);
  sim.PreloadKeys(kTenant, 2000, 1024);

  sim::SeriesSpec day;
  day.hours = 24;
  day.base = 200;
  day.seasons.push_back({24, 150});
  Rng schedule_rng(5);

  sim::WorkloadProfile profile;
  profile.read_ratio = 0.3;
  profile.num_keys = 2000;
  profile.value_bytes = 1024;
  profile.rate_schedule = sim::GenerateSeries(day, schedule_rng);
  profile.rate_schedule_step = 3 * kMicrosPerSecond;
  // The daily burst: hours 5-8 of each simulated day.
  for (int d = 0; d < 2; d++) {
    Micros base = d * 72 * kMicrosPerSecond;
    profile.bursts.push_back({base + 15 * kMicrosPerSecond,
                              base + 27 * kMicrosPerSecond, 4.0});
  }
  sim.SetWorkload(kTenant, profile);

  sim::SeriesSpec past;
  past.hours = 30 * 24;
  past.base = 480;
  past.seasons.push_back({24, 360});
  past.noise_sigma = 10;
  for (size_t d = 0; d < 30; d++) {
    past.bursts.push_back({d * 24 + 5, 3, 2400});
  }
  Rng history_rng(17);
  sim.SeedUsageHistory(kTenant, sim::GenerateSeries(past, history_rng));
  sim.EnableAutoscale(kTenant, mode);

  AblationResult r;
  // Two simulated days (48 control hours = 144 ticks), one burst each.
  for (uint64_t tick = 1; tick <= 144; tick++) {
    sim.Tick();
    if (r.first_scale_up_tick == 0 &&
        sim.meta().GetTenant(kTenant)->tenant_quota_ru > kInitialQuota) {
      r.first_scale_up_tick = tick;
    }
  }
  for (const auto& m : sim.History(kTenant)) {
    r.throttled += m.throttled;
    r.ok += m.ok;
  }
  r.scale_ups = sim.Tenant(kTenant)->scale_ups;
  r.final_quota = sim.meta().GetTenant(kTenant)->tenant_quota_ru;
  return r;
}

// ------------------------------------------------------------- Part 2 --

struct SplitResult {
  uint64_t acked_writes = 0;
  uint64_t lost_acked_writes = 0;
  uint64_t reads_failed_during = 0;
  uint64_t cutover_tick = 0;
  uint64_t complete_tick = 0;
  uint64_t bytes_streamed = 0;  ///< Preload dataset size proxy.
  size_t partitions_after = 0;
};

SplitResult RunSplitCutover() {
  sim::SimOptions opt;
  opt.seed = 77;
  opt.split_bytes_per_tick = 32 << 10;  // Multi-tick streaming.
  sim::ClusterSim sim(opt);
  PoolId pool = sim.AddPool(6);
  (void)sim.AddTenant(Tenant(50000, 4, 1e9), pool);
  const uint64_t kKeys = 2000;
  sim.PreloadKeys(kTenant, kKeys, 256);

  SplitResult r;
  uint64_t next_req = 7000000;
  uint64_t writes = 0, probe = 0;
  std::map<uint64_t, std::string> pending_reads;
  std::map<uint64_t, std::pair<std::string, std::string>> pending_writes;
  std::map<std::string, std::string> acked;

  auto harvest = [&]() {
    for (auto it = pending_reads.begin(); it != pending_reads.end();) {
      auto outcome = sim.TakeOutcome(it->first);
      if (!outcome.has_value()) {
        ++it;
        continue;
      }
      if (!outcome->status.ok() || outcome->value.empty()) {
        r.reads_failed_during++;
      }
      it = pending_reads.erase(it);
    }
    for (auto it = pending_writes.begin(); it != pending_writes.end();) {
      auto outcome = sim.TakeOutcome(it->first);
      if (!outcome.has_value()) {
        ++it;
        continue;
      }
      if (outcome->status.ok()) acked[it->second.first] = it->second.second;
      it = pending_writes.erase(it);
    }
  };

  (void)sim.StartPartitionSplit(kTenant);
  for (uint64_t tick = 1; tick <= 200; tick++) {
    // Continuous tracked traffic: reads across the preloaded keyspace,
    // one uniquely-keyed write per tick.
    for (int i = 0; i < 6; i++) {
      ClientRequest req;
      req.req_id = next_req++;
      req.tenant = kTenant;
      req.op = OpType::kGet;
      req.key = "t1:k" + std::to_string(probe % kKeys);
      probe += 211;
      req.track_outcome = true;
      pending_reads[req.req_id] = req.key;
      sim.InjectRequest(req);
    }
    {
      ClientRequest req;
      req.req_id = next_req++;
      req.tenant = kTenant;
      req.op = OpType::kSet;
      req.key = "t1:kw" + std::to_string(writes);
      req.value = "payload-" + std::to_string(writes);
      writes++;
      req.track_outcome = true;
      pending_writes[req.req_id] = {req.key, req.value};
      sim.InjectRequest(req);
    }
    sim.Tick();
    harvest();
    if (r.cutover_tick == 0 && sim.SplitCutovers() == 1) {
      r.cutover_tick = tick;
    }
    if (r.complete_tick == 0 && sim.SplitsCompleted() == 1) {
      r.complete_tick = tick;
    }
  }
  sim.RunTicks(4);
  harvest();
  r.acked_writes = acked.size();
  r.partitions_after = sim.meta().GetTenant(kTenant)->partitions.size();

  // Read every acknowledged write back through normal routing; a miss or
  // a value mismatch is a lost acked write.
  for (const auto& [key, value] : acked) {
    ClientRequest req;
    req.req_id = next_req++;
    req.tenant = kTenant;
    req.op = OpType::kGet;
    req.key = key;
    req.track_outcome = true;
    sim.InjectRequest(req);
    sim.RunTicks(3);
    auto outcome = sim.TakeOutcome(req.req_id);
    if (!outcome.has_value() || !outcome->status.ok() ||
        outcome->value != value) {
      r.lost_acked_writes++;
    }
  }
  return r;
}

}  // namespace bench
}  // namespace abase

int main() {
  abase::bench::PrintHeader(
      "Closed-loop autoscaling: predictive vs reactive, and online split "
      "cutover");

  std::printf("\n%12s %18s %10s %12s %12s\n", "mode", "first_scale_tick",
              "scale_ups", "throttled", "final_quota");
  abase::bench::AblationResult predictive =
      abase::bench::RunAblation(abase::sim::AutoscaleMode::kPredictive);
  abase::bench::AblationResult reactive =
      abase::bench::RunAblation(abase::sim::AutoscaleMode::kReactive);
  std::printf("%12s %18llu %10llu %12llu %12.0f\n", "predictive",
              (unsigned long long)predictive.first_scale_up_tick,
              (unsigned long long)predictive.scale_ups,
              (unsigned long long)predictive.throttled,
              predictive.final_quota);
  std::printf("%12s %18llu %10llu %12llu %12.0f\n", "reactive",
              (unsigned long long)reactive.first_scale_up_tick,
              (unsigned long long)reactive.scale_ups,
              (unsigned long long)reactive.throttled, reactive.final_quota);

  const bool predictive_throttles_less =
      predictive.throttled < reactive.throttled && reactive.throttled > 0;
  std::printf("predictive throttles less than reactive: %s\n",
              predictive_throttles_less ? "yes" : "NO (regression)");

  abase::bench::SplitResult split = abase::bench::RunSplitCutover();
  std::printf("\nonline split: cutover@tick %llu, complete@tick %llu, "
              "partitions 4 -> %zu\n",
              (unsigned long long)split.cutover_tick,
              (unsigned long long)split.complete_tick,
              split.partitions_after);
  std::printf("acked writes %llu, lost %llu, failed reads during split "
              "%llu\n",
              (unsigned long long)split.acked_writes,
              (unsigned long long)split.lost_acked_writes,
              (unsigned long long)split.reads_failed_during);
  const bool split_lossless = split.cutover_tick > 0 &&
                              split.complete_tick > 0 &&
                              split.acked_writes > 0 &&
                              split.lost_acked_writes == 0 &&
                              split.reads_failed_during == 0;
  std::printf("split cutover loses zero acked writes: %s\n",
              split_lossless ? "yes" : "NO (regression)");

  FILE* f = std::fopen("BENCH_autoscale.json", "w");
  if (f != nullptr) {
    std::fprintf(
        f,
        "{\"bench\":\"autoscale\","
        "\"predictive_throttles_less\":%s,\"split_lossless\":%s,"
        "\"ablation\":{"
        "\"predictive\":{\"first_scale_up_tick\":%llu,\"scale_ups\":%llu,"
        "\"throttled\":%llu,\"ok\":%llu,\"final_quota\":%.1f},"
        "\"reactive\":{\"first_scale_up_tick\":%llu,\"scale_ups\":%llu,"
        "\"throttled\":%llu,\"ok\":%llu,\"final_quota\":%.1f}},"
        "\"split\":{\"cutover_tick\":%llu,\"complete_tick\":%llu,"
        "\"partitions_after\":%zu,\"acked_writes\":%llu,"
        "\"lost_acked_writes\":%llu,\"reads_failed_during\":%llu}}\n",
        predictive_throttles_less ? "true" : "false",
        split_lossless ? "true" : "false",
        (unsigned long long)predictive.first_scale_up_tick,
        (unsigned long long)predictive.scale_ups,
        (unsigned long long)predictive.throttled,
        (unsigned long long)predictive.ok, predictive.final_quota,
        (unsigned long long)reactive.first_scale_up_tick,
        (unsigned long long)reactive.scale_ups,
        (unsigned long long)reactive.throttled,
        (unsigned long long)reactive.ok, reactive.final_quota,
        (unsigned long long)split.cutover_tick,
        (unsigned long long)split.complete_tick, split.partitions_after,
        (unsigned long long)split.acked_writes,
        (unsigned long long)split.lost_acked_writes,
        (unsigned long long)split.reads_failed_during);
    std::fclose(f);
    std::printf("\nwrote BENCH_autoscale.json\n");
  }
  return predictive_throttles_less && split_lossless ? 0 : 1;
}
