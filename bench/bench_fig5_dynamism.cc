// Figure 5 reproduction: tenant latency stability amid Double-11
// workload fluctuations. Six scripted scenarios (a)-(f); each prints a
// QPS / cache-hit / latency time series, and the harness checks the
// paper's headline claim: latency stays stable (no SLA violation) in
// every case.
//
//  (a) QPS rises, cache hit ratio stays ~100% (hot set unchanged).
//  (b) QPS rises, cache hit ratio drops >20% (key spread widens).
//  (c) QPS and cache hit ratio both rise (hot-key event).
//  (d) QPS stable, cache hit ratio drops ~10% (cold-data access shift).
//  (e) 3-day traffic peak with hit ratio collapsing to ~2% (ad-hoc scan
//      of cold data).
//  (f) Pool-level: aggregate QPS and hit ratio stay stable.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "sim/cluster_sim.h"

using namespace abase;

namespace {

constexpr size_t kPhaseTicks = 60;  // One "day" of the festival window.
constexpr size_t kPhases = 4;

struct Scenario {
  const char* label;
  sim::WorkloadProfile initial;
  /// Mutates the profile at each phase boundary.
  std::function<void(sim::WorkloadProfile&, size_t phase)> evolve;
};

void RunScenario(const Scenario& sc) {
  sim::SimOptions opts;
  opts.seed = 99;
  opts.node.wfq.cpu_budget_ru = 400000;
  opts.node.disk.read_iops_capacity = 3e6;
  opts.node.cache.capacity_bytes = 8ull << 20;
  opts.proxy.cache.capacity_bytes = 1ull << 20;
  sim::ClusterSim cluster(opts);
  PoolId pool = cluster.AddPool(6);

  meta::TenantConfig cfg;
  cfg.id = 1;
  cfg.name = sc.label;
  cfg.tenant_quota_ru = 3e6;  // Elastic quota: this figure is about cache
  cfg.num_partitions = 6;     // and latency dynamics, not throttling.
  cfg.num_proxies = 4;
  cfg.num_proxy_groups = 2;
  (void)cluster.AddTenant(cfg, pool);
  cluster.SetWorkload(1, sc.initial);

  std::printf("\n--- Figure 5%s ---\n", sc.label);
  std::printf("%6s %12s %10s %12s\n", "tick", "successQPS", "cacheHit",
              "meanLat(us)");

  double max_latency = 0;
  for (size_t phase = 0; phase < kPhases; phase++) {
    if (phase > 0) {
      sim::WorkloadProfile* p = cluster.MutableWorkload(1);
      sc.evolve(*p, phase);
    }
    cluster.RunTicks(kPhaseTicks);
    size_t end = (phase + 1) * kPhaseTicks;
    auto w = bench::Aggregate(cluster, 1, end - 20, end);
    std::printf("%6zu %12.0f %9.1f%% %12.0f\n", end, w.success_qps,
                w.cache_hit_ratio * 100, w.mean_latency_us);
    max_latency = std::max(max_latency, w.mean_latency_us);
  }
  // Paper claim: latency stays far below a 50ms SLA in every scenario.
  std::printf("  -> max mean latency %.0fus (SLA 50000us): %s\n", max_latency,
              max_latency < 50000 ? "STABLE (matches paper)" : "VIOLATED");
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 5: tenant stability amid Double-11 workload fluctuation");

  std::vector<Scenario> scenarios;

  {  // (a) QPS up, hit ratio stays high: hot set unchanged.
    sim::WorkloadProfile p;
    p.base_qps = 1000;
    p.read_ratio = 0.97;
    p.num_keys = 300;
    p.zipf_theta = 0.99;
    scenarios.push_back(
        {"a (QPS up, hit stable)", p,
         [](sim::WorkloadProfile& w, size_t phase) {
           w.base_qps = 1000 * (1 + phase);  // Up to 4x.
         }});
  }
  {  // (b) QPS up, hit ratio down: key spread widens with traffic.
    sim::WorkloadProfile p;
    p.base_qps = 1000;
    p.read_ratio = 0.95;
    p.num_keys = 2000;
    p.zipf_theta = 0.97;
    scenarios.push_back(
        {"b (QPS up, hit drops)", p,
         [](sim::WorkloadProfile& w, size_t phase) {
           w.base_qps = 1000 * (1 + phase);
           w.num_keys = 2000 + 40000 * phase;  // Broader key distribution.
           w.zipf_theta = std::max(0.75, 0.97 - 0.08 * phase);
         }});
  }
  {  // (c) QPS up AND hit ratio up: hot-key event concentrates access.
    sim::WorkloadProfile p;
    p.base_qps = 1000;
    p.read_ratio = 0.95;
    p.num_keys = 50000;
    p.zipf_theta = 0.8;
    scenarios.push_back(
        {"c (QPS up, hit rises: hot keys)", p,
         [](sim::WorkloadProfile& w, size_t phase) {
           w.base_qps = 1000 * (1 + phase);
           w.key_dist = sim::KeyDist::kHotSpot;
           w.hot_fraction = 0.0002;
           w.hot_share = 0.5 + 0.15 * phase;  // Hot set takes over.
         }});
  }
  {  // (d) QPS stable, hit ratio sags ~10%: colder access mix.
    sim::WorkloadProfile p;
    p.base_qps = 2000;
    p.read_ratio = 0.95;
    p.num_keys = 3000;
    p.zipf_theta = 0.95;
    scenarios.push_back(
        {"d (QPS flat, hit drops)", p,
         [](sim::WorkloadProfile& w, size_t phase) {
           w.num_keys = 3000 + 12000 * phase;  // Older cold data mixed in.
           w.zipf_theta = std::max(0.8, 0.95 - 0.05 * phase);
         }});
  }
  {  // (e) Short peak, hit ratio collapses to ~2%: ad-hoc cold scan.
    sim::WorkloadProfile p;
    p.base_qps = 1500;
    p.read_ratio = 0.95;
    p.num_keys = 1000;
    p.zipf_theta = 0.97;
    scenarios.push_back(
        {"e (peak + hit collapse)", p,
         [](sim::WorkloadProfile& w, size_t phase) {
           if (phase == 1 || phase == 2) {
             w.base_qps = 4500;  // 3x peak "for about 3 days".
             w.key_dist = sim::KeyDist::kUniform;
             w.num_keys = 3000000;  // Cold scan: hit ratio -> ~0.
           } else {
             w.base_qps = 1500;
             w.key_dist = sim::KeyDist::kZipfian;
             w.num_keys = 1000;
           }
         }});
  }

  for (const auto& sc : scenarios) RunScenario(sc);

  // (f) Pool level: many tenants, one bursting — aggregate stays stable.
  std::printf("\n--- Figure 5f (resource-pool level) ---\n");
  sim::SimOptions opts;
  opts.seed = 17;
  opts.node.wfq.cpu_budget_ru = 400000;
  opts.node.disk.read_iops_capacity = 3e6;
  sim::ClusterSim cluster(opts);
  PoolId pool = cluster.AddPool(8);
  for (TenantId id = 1; id <= 10; id++) {
    meta::TenantConfig cfg;
    cfg.id = id;
    cfg.name = "pool-tenant" + std::to_string(id);
    cfg.tenant_quota_ru = 1e6;
    cfg.num_partitions = 4;
    cfg.num_proxies = 4;
    cfg.num_proxy_groups = 2;
    (void)cluster.AddTenant(cfg, pool);
    sim::WorkloadProfile p;
    p.base_qps = 800;
    p.read_ratio = 0.9;
    p.num_keys = 500;
    p.zipf_theta = 0.95;
    cluster.SetWorkload(id, p);
  }
  std::printf("%6s %14s %10s %12s\n", "tick", "poolQPS", "poolHit",
              "meanLat(us)");
  for (size_t phase = 0; phase < kPhases; phase++) {
    if (phase == 1) {
      // Tenant 1 quadruples and goes cold — the pool barely notices.
      sim::WorkloadProfile* p = cluster.MutableWorkload(1);
      p->base_qps = 3200;
      p->key_dist = sim::KeyDist::kUniform;
      p->num_keys = 2000000;
    }
    cluster.RunTicks(kPhaseTicks);
    size_t end = (phase + 1) * kPhaseTicks;
    double qps = 0, hit_num = 0, hit_den = 0, lat_sum = 0, lat_n = 0;
    for (TenantId id = 1; id <= 10; id++) {
      auto w = bench::Aggregate(cluster, id, end - 20, end);
      qps += w.success_qps;
      hit_num += w.cache_hit_ratio * w.success_qps;
      hit_den += w.success_qps;
      lat_sum += w.mean_latency_us * w.success_qps;
      lat_n += w.success_qps;
    }
    std::printf("%6zu %14.0f %9.1f%% %12.0f\n", end, qps,
                hit_den > 0 ? hit_num / hit_den * 100 : 0,
                lat_n > 0 ? lat_sum / lat_n : 0);
  }
  std::printf("  -> pool aggregate stays stable while tenant 1 fluctuates "
              "(paper Figure 5f)\n");
  return 0;
}
