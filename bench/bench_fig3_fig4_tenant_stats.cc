// Figures 3 and 4 reproduction: production statistics of one resource
// pool.
//
// Figure 3: scatter of tenants by (RU, storage, read ratio) — we print
// each tenant's coordinates normalized by the median, plus the
// correlation the paper describes (higher RU/storage ratio => more
// read-heavy).
//
// Figure 4: percentile curves across tenants for latency-to-SLA, cache
// hit ratio, read ratio, and average K-V size. Paper anchors: all
// tenants < 66% of SLA, p90 < 24%, p50 < 11.2%; cache hit p50 93.5%;
// read ratio p50 39.3%; KV size p50 0.12KB / p90 50KB / p99 308KB.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/histogram.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "sim/cluster_sim.h"

using namespace abase;

int main() {
  bench::PrintHeader("Figures 3-4: tenant distribution & metric percentiles");

  const int kTenants = 48;
  sim::SimOptions opts;
  opts.seed = 7;
  opts.node.wfq.cpu_budget_ru = 300000;
  opts.node.disk.read_iops_capacity = 2e6;
  sim::ClusterSim cluster(opts);
  PoolId pool = cluster.AddPool(12);
  Rng rng(1234);

  // Tenant population mirroring Figure 3/4's marginals: log-normal QPS
  // and value sizes (median ~0.12KB with a heavy upper tail), a bimodal
  // read-ratio mix (write-heavy pipeline tenants vs read-heavy serving
  // tenants), and mixed key skews.
  for (int i = 0; i < kTenants; i++) {
    meta::TenantConfig cfg;
    cfg.id = static_cast<TenantId>(i + 1);
    cfg.name = "tenant" + std::to_string(i + 1);
    cfg.tenant_quota_ru = 3e5;
    cfg.num_partitions = 4;
    cfg.num_proxies = 4;
    cfg.num_proxy_groups = 2;
    if (!cluster.AddTenant(cfg, pool).ok()) continue;

    sim::WorkloadProfile p;
    bool write_heavy = rng.NextBool(0.5);  // Paper: p50 read ratio 39.3%.
    p.read_ratio = write_heavy ? rng.NextDouble() * 0.4
                               : 0.6 + rng.NextDouble() * 0.4;
    // The paper's Figure 3 structure: read-heavy serving tenants run hot
    // and small (high RU : storage); write-heavy pipeline tenants
    // accumulate data (low RU : storage).
    double qps_scale = write_heavy ? 0.6 : 1.6;
    p.base_qps =
        std::min(4000.0, rng.NextLogNormal(std::log(250), 1.0) * qps_scale);
    p.num_keys = write_heavy ? 4000 + rng.NextUint64(60000)
                             : 1000 + rng.NextUint64(12000);
    p.zipf_theta = 0.85 + rng.NextDouble() * 0.14;  // Hot working sets.
    // Value-size mixture matching Figure 4d's heavy tail: mostly ~0.1KB,
    // a mid-size band, and a few very large tenants.
    double pick = rng.NextDouble();
    if (pick < 0.72) {
      p.value_bytes = static_cast<uint64_t>(
          std::clamp(rng.NextLogNormal(std::log(110), 0.6), 16.0, 2e3));
    } else if (pick < 0.92) {
      p.value_bytes = static_cast<uint64_t>(
          std::clamp(rng.NextLogNormal(std::log(8e3), 0.9), 2e3, 8e4));
    } else {
      p.value_bytes = static_cast<uint64_t>(
          std::clamp(rng.NextLogNormal(std::log(2e5), 0.7), 8e4, 5e5));
    }
    p.value_sigma = 0.4;
    cluster.SetWorkload(cfg.id, p);
    // Every tenant arrives with its dataset already stored.
    bench::PreloadTenant(cluster, cfg.id, p.num_keys, p.value_bytes,
                         p.value_sigma);
  }

  const size_t kWarmup = 30, kMeasure = 30;
  cluster.RunTicks(kWarmup + kMeasure);

  // ---- Figure 3: tenant scatter ------------------------------------------
  struct TenantPoint {
    double ru, storage, read_ratio;
  };
  std::vector<TenantPoint> points;
  for (int i = 0; i < kTenants; i++) {
    TenantId id = static_cast<TenantId>(i + 1);
    auto w = bench::Aggregate(cluster, id, kWarmup, kWarmup + kMeasure);
    double bytes = 0;
    for (const auto& n : cluster.nodes()) {
      for (const auto* rep : n->Replicas()) {
        if (rep->tenant == id && rep->is_primary) {
          bytes += static_cast<double>(rep->engine->ApproximateDataBytes());
        }
      }
    }
    points.push_back({w.ru_per_sec, bytes, w.read_ratio});
  }
  std::vector<double> rus, stos;
  for (const auto& p : points) {
    rus.push_back(p.ru);
    stos.push_back(p.storage);
  }
  double med_ru = ExactPercentile(rus, 50);
  double med_sto = ExactPercentile(stos, 50);

  std::printf("\nFigure 3 scatter (normalized by median, log-ish axes):\n");
  std::printf("%8s %12s %12s %10s\n", "tenant", "RU/median", "Sto/median",
              "ReadRatio");
  for (size_t i = 0; i < points.size(); i++) {
    std::printf("%8zu %12.3f %12.3f %9.0f%%\n", i + 1,
                points[i].ru / std::max(1.0, med_ru),
                points[i].storage / std::max(1.0, med_sto),
                points[i].read_ratio * 100);
  }
  // Paper's observation: tenants in the lower-right (high RU:storage)
  // skew read-heavy. Check the correlation sign.
  std::vector<double> ratio_log, readr;
  for (const auto& p : points) {
    if (p.storage > 0 && p.ru > 0) {
      ratio_log.push_back(std::log(p.ru / p.storage));
      readr.push_back(p.read_ratio);
    }
  }
  std::printf("corr(log(RU/storage), read_ratio) = %.3f  (paper: positive)\n",
              PearsonCorrelation(ratio_log, readr));

  // ---- Figure 4: percentiles across tenants -------------------------------
  const double kSlaMicros = 5000;  // 5 ms SLA (strict online serving).
  std::vector<double> lat_to_sla_max, lat_to_sla_p90, lat_to_sla_p50;
  std::vector<double> hit_ratios, read_ratios, kv_sizes;
  for (int i = 0; i < kTenants; i++) {
    TenantId id = static_cast<TenantId>(i + 1);
    const auto* rt = cluster.Tenant(id);
    if (rt == nullptr || rt->latency_hist.count() == 0) continue;
    lat_to_sla_max.push_back(rt->latency_hist.max() / kSlaMicros * 100);
    lat_to_sla_p90.push_back(rt->latency_hist.P90() / kSlaMicros * 100);
    lat_to_sla_p50.push_back(rt->latency_hist.P50() / kSlaMicros * 100);
    auto w = bench::Aggregate(cluster, id, kWarmup, kWarmup + kMeasure);
    hit_ratios.push_back(w.cache_hit_ratio * 100);
    read_ratios.push_back(w.read_ratio * 100);
    if (rt->value_bytes_count > 0) {
      kv_sizes.push_back(static_cast<double>(rt->value_bytes_sum) /
                         static_cast<double>(rt->value_bytes_count) / 1024.0);
    }
  }

  std::printf("\nFigure 4a — Latency as %% of SLA across tenants:\n");
  std::printf("  max-of-max: %6.1f%%   (paper: max 66.0%%)\n",
              ExactPercentile(lat_to_sla_max, 100));
  std::printf("  p90 tenant (p90 latency): %6.1f%%   (paper: 24.0%%)\n",
              ExactPercentile(lat_to_sla_p90, 90));
  std::printf("  p50 tenant (p50 latency): %6.1f%%   (paper: 11.2%%)\n",
              ExactPercentile(lat_to_sla_p50, 50));

  std::printf("\nFigure 4b — Cache hit ratio across tenants:\n");
  std::printf("  p99: %5.1f%%  p90: %5.1f%%  p50: %5.1f%%   "
              "(paper: 100 / 99.9 / 93.5)\n",
              ExactPercentile(hit_ratios, 99), ExactPercentile(hit_ratios, 90),
              ExactPercentile(hit_ratios, 50));

  std::printf("\nFigure 4c — Read ratio across tenants:\n");
  std::printf("  p99: %5.1f%%  p90: %5.1f%%  p50: %5.1f%%   "
              "(paper: 99.9 / 97.6 / 39.3)\n",
              ExactPercentile(read_ratios, 99),
              ExactPercentile(read_ratios, 90),
              ExactPercentile(read_ratios, 50));

  std::printf("\nFigure 4d — Average K-V size (KB) across tenants:\n");
  std::printf("  p99: %7.1f  p90: %7.1f  p50: %7.2f   "
              "(paper: 308 / 50 / 0.12)\n",
              ExactPercentile(kv_sizes, 99), ExactPercentile(kv_sizes, 90),
              ExactPercentile(kv_sizes, 50));
  return 0;
}
