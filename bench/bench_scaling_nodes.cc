// Data-plane scaling: ticks/sec vs node count and NodeSchedule worker
// count. This is the perf trajectory for the parallel executor — the
// refactor's payoff is that within a tick, DataNodes are independent
// between Submit() and TakeResponses(), so their WFQ ticks fan out across
// a worker pool while serial/parallel results stay bit-identical
// (tests/pipeline_test.cc proves the identity).
//
// Emits a human-readable table and writes the run's machine-readable
// record to BENCH_scaling_nodes.json (overwritten per run; CI archives
// it as an artifact for trend tracking).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"

namespace abase {
namespace bench {
namespace {

struct RunResult {
  size_t nodes = 0;
  size_t tenants = 0;
  int workers = 0;  ///< 1 = serial reference executor.
  double ticks_per_sec = 0;
  uint64_t requests_completed = 0;
  /// Wall-clock nanoseconds spent in each pipeline stage across the timed
  /// ticks (satellite: per-stage cost attribution). Parallel stages count
  /// the spawning thread's wall time, which includes worker wait.
  std::vector<std::pair<std::string, uint64_t>> stage_nanos;
};

meta::TenantConfig ScalingTenant(TenantId id, uint32_t partitions) {
  meta::TenantConfig c;
  c.id = id;
  c.name = "t" + std::to_string(id);
  c.tenant_quota_ru = 40000;
  c.num_partitions = partitions;
  c.num_proxies = 4;
  c.num_proxy_groups = 2;
  return c;
}

RunResult RunOnce(size_t num_nodes, size_t num_tenants, int workers,
                  size_t warmup_ticks, size_t timed_ticks,
                  const char* trace_path = nullptr) {
  sim::SimOptions opt;
  opt.seed = 99;
  opt.data_plane_workers = workers;
  if (trace_path != nullptr) opt.trace_path = trace_path;
  sim::ClusterSim sim(opt);
  PoolId pool = sim.AddPool(num_nodes);

  // Enough partitions that every node hosts replicas of every tenant.
  uint32_t partitions = static_cast<uint32_t>(num_nodes);
  for (TenantId t = 1; t <= num_tenants; t++) {
    (void)sim.AddTenant(ScalingTenant(t, partitions), pool);
    sim.PreloadKeys(t, /*num_keys=*/2000, /*value_bytes=*/512);
    sim::WorkloadProfile profile;
    profile.base_qps = 1500;
    profile.read_ratio = 0.8;
    profile.num_keys = 2000;
    profile.value_bytes = 512;
    sim.SetWorkload(t, profile);
  }

  sim.RunTicks(warmup_ticks);

  // Per-stage attribution only covers the timed window; the clock pairs
  // it inserts are observation-only (determinism untouched).
  sim.pipeline().SetStageTiming(true);
  sim.pipeline().ResetStageNanos();

  auto start = std::chrono::steady_clock::now();
  sim.RunTicks(timed_ticks);
  auto end = std::chrono::steady_clock::now();
  double seconds = std::chrono::duration<double>(end - start).count();

  RunResult r;
  for (size_t i = 0; i < sim.pipeline().num_stages(); i++) {
    r.stage_nanos.emplace_back(sim.pipeline().stage(i).name(),
                               sim.pipeline().stage_nanos(i));
  }
  r.nodes = num_nodes;
  r.tenants = num_tenants;
  r.workers = workers;
  r.ticks_per_sec =
      seconds > 0 ? static_cast<double>(timed_ticks) / seconds : 0;
  for (TenantId t = 1; t <= num_tenants; t++) {
    const auto& h = sim.History(t);
    for (size_t i = warmup_ticks; i < h.size(); i++) {
      r.requests_completed += h[i].ok;
    }
  }
  return r;
}

}  // namespace
}  // namespace bench
}  // namespace abase

int main() {
  using abase::bench::RunOnce;
  using abase::bench::RunResult;

  const unsigned hw = std::thread::hardware_concurrency();
  abase::bench::PrintHeader(
      "Scaling: ticks/sec vs node count and data-plane workers "
      "(hardware threads: " +
      std::to_string(hw) + ")");

  const std::vector<size_t> node_counts = {4, 8, 16};
  const std::vector<int> worker_counts = {1, 2, 4};
  constexpr size_t kTenants = 8;
  constexpr size_t kWarmup = 2;
  constexpr size_t kTimed = 8;
  constexpr size_t kRepetitions = 3;  ///< Median-of-N per configuration.

  std::printf("%8s %8s %9s %12s %12s %10s\n", "nodes", "tenants", "workers",
              "ticks/sec", "reqs_ok", "speedup");
  std::vector<RunResult> results;
  for (size_t nodes : node_counts) {
    double serial_tps = 0;
    for (int workers : worker_counts) {
      // Each repetition is a full fresh simulation; the reported
      // ticks/sec is the median so one noisy run doesn't set the trend.
      std::vector<double> tps_samples;
      RunResult r;
      for (size_t rep = 0; rep < kRepetitions; rep++) {
        r = RunOnce(nodes, kTenants, workers, kWarmup, kTimed);
        tps_samples.push_back(r.ticks_per_sec);
      }
      r.ticks_per_sec = abase::bench::Median(tps_samples);
      if (workers == 1) serial_tps = r.ticks_per_sec;
      double speedup = serial_tps > 0 ? r.ticks_per_sec / serial_tps : 0;
      std::printf("%8zu %8zu %9d %12.2f %12llu %9.2fx\n", r.nodes, r.tenants,
                  r.workers, r.ticks_per_sec,
                  static_cast<unsigned long long>(r.requests_completed),
                  speedup);
      if (workers == 1) {
        // Where the serial tick actually goes (last repetition's split).
        uint64_t total_ns = 0;
        for (const auto& s : r.stage_nanos) total_ns += s.second;
        std::printf("%19s", "stages:");
        for (const auto& s : r.stage_nanos) {
          std::printf(" %s=%.0f%%", s.first.c_str(),
                      total_ns > 0 ? 100.0 * static_cast<double>(s.second) /
                                         static_cast<double>(total_ns)
                                   : 0.0);
        }
        std::printf("\n");
      }
      results.push_back(r);
    }
  }
  if (hw < 4) {
    std::printf(
        "\nNote: only %u hardware thread(s) available — parallel speedup "
        "needs >= `workers` cores to materialize.\n",
        hw);
  }

  // Machine-readable trend record, written at the repo root (committed
  // per PR so the perf trajectory has data points). hardware_threads
  // lets consumers — CI, the 4-worker speedup gate — self-disable
  // parallel expectations on small containers.
  const std::string json_path =
      abase::bench::RepoRootPath("BENCH_scaling_nodes.json");
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\"bench\":\"scaling_nodes\",\"hardware_threads\":%u,"
                 "\"warmup_ticks\":%zu,\"timed_ticks\":%zu,"
                 "\"repetitions\":%zu,\"results\":[",
                 hw, kWarmup, kTimed, kRepetitions);
    for (size_t i = 0; i < results.size(); i++) {
      const RunResult& r = results[i];
      std::fprintf(f,
                   "%s{\"nodes\":%zu,\"tenants\":%zu,\"workers\":%d,"
                   "\"ticks_per_sec\":%.3f,\"requests_ok\":%llu,"
                   "\"stage_nanos\":{",
                   i == 0 ? "" : ",", r.nodes, r.tenants, r.workers,
                   r.ticks_per_sec,
                   static_cast<unsigned long long>(r.requests_completed));
      for (size_t s = 0; s < r.stage_nanos.size(); s++) {
        std::fprintf(f, "%s\"%s\":%llu", s == 0 ? "" : ",",
                     r.stage_nanos[s].first.c_str(),
                     static_cast<unsigned long long>(r.stage_nanos[s].second));
      }
      std::fprintf(f, "}}");
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  // Optional perfetto trace of one short run (CI uploads it as an
  // artifact; load in ui.perfetto.dev): ABASE_BENCH_TRACE=<path>.
  const char* trace_path = std::getenv("ABASE_BENCH_TRACE");
  if (trace_path != nullptr && trace_path[0] != '\0') {
    const int trace_workers = hw >= 4 ? 4 : 2;
    (void)RunOnce(/*num_nodes=*/16, kTenants, trace_workers,
                  /*warmup_ticks=*/1, /*timed_ticks=*/4, trace_path);
    std::printf("wrote perfetto trace %s (%d workers)\n", trace_path,
                trace_workers);
  }

  // Exit-code gates (CI perf smoke). The floor catches
  // order-of-magnitude regressions, not run-to-run noise — set it well
  // below the recorded trend. The 4-worker scaling gate self-disables
  // below 4 hardware threads, where extra workers only add coordination
  // overhead.
  int rc = 0;
  const char* floor_env = std::getenv("ABASE_BENCH_MIN_TPS");
  if (floor_env != nullptr && floor_env[0] != '\0') {
    const double floor = std::atof(floor_env);
    for (const RunResult& r : results) {
      if (r.workers != 1) continue;
      if (r.ticks_per_sec < floor) {
        std::printf("FAIL: %zu-node 1-worker %.2f ticks/sec below floor %.2f\n",
                    r.nodes, r.ticks_per_sec, floor);
        rc = 1;
      }
    }
  }
  if (hw >= 4) {
    const char* spd_env = std::getenv("ABASE_BENCH_MIN_SPEEDUP_4W");
    const double min_speedup = spd_env != nullptr ? std::atof(spd_env) : 1.2;
    double serial_16 = 0, four_16 = 0;
    for (const RunResult& r : results) {
      if (r.nodes != 16) continue;
      if (r.workers == 1) serial_16 = r.ticks_per_sec;
      if (r.workers == 4) four_16 = r.ticks_per_sec;
    }
    if (serial_16 > 0 && four_16 < min_speedup * serial_16) {
      std::printf("FAIL: 16-node 4-worker speedup %.2fx below %.2fx\n",
                  four_16 / serial_16, min_speedup);
      rc = 1;
    }
  }
  return rc;
}
