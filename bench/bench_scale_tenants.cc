// Million-tenant sparse-ticking scaling: the active-set data plane's
// headline claim is that tick cost tracks *active* work, not registered
// tenants. Two runs on the same 1000-node pool carry the identical live
// workload (1000 trafficked tenants); the big run additionally registers
// 999k parked tenants whose flat-zero schedules park their generators on
// the event wheel after the first tick. Dense ticking pays
// per-registered-tenant walk cost every tick (measured ~4 s/tick at 1M
// registered on this container, vs ~0.3 s/tick sparse) and fails the 2x
// exit-code gate; the sparse default holds it.
//
// Emits a human-readable table and writes the run's machine-readable
// record to BENCH_scale_tenants.json (overwritten per run; CI archives
// it as an artifact for trend tracking).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"

namespace abase {
namespace bench {
namespace {

struct RunResult {
  size_t nodes = 0;
  size_t registered = 0;
  size_t active = 0;
  double ticks_per_sec = 0;
  double setup_seconds = 0;
  uint64_t requests_completed = 0;
  size_t active_generators = 0;  ///< |gen_active_| after the timed window.
  size_t repl_active = 0;        ///< |repl_active_| after the timed window.
  size_t pending_wakes = 0;      ///< Generator wheel entries outstanding.
};

meta::TenantConfig ScaleTenant(TenantId id) {
  meta::TenantConfig c;
  c.id = id;
  c.name = "t" + std::to_string(id);
  c.tenant_quota_ru = 40000;
  // Minimal per-tenant footprint: the run measures how cheaply a parked
  // tenant rides along, not replication or proxy fan-out.
  c.num_partitions = 1;
  c.replicas = 1;
  c.num_proxies = 1;
  c.num_proxy_groups = 1;
  return c;
}

RunResult RunOnce(size_t num_nodes, size_t registered, size_t active,
                  size_t warmup_ticks, size_t timed_ticks, size_t windows,
                  bool dense_tick) {
  sim::SimOptions opt;
  opt.seed = 77;
  // Round-robin placement: hash-free striping keeps 1M single-replica
  // tenants uniform across the pool without a per-tenant RNG draw.
  opt.striped_placement = true;
  opt.dense_tick = dense_tick;
  sim::ClusterSim sim(opt);

  auto setup_start = std::chrono::steady_clock::now();
  PoolId pool = sim.AddPool(num_nodes);
  // Tenants 1..active carry traffic in BOTH runs: striped placement puts
  // them on the same nodes and their RNG streams are per-tenant, so the
  // live workload is bit-identical whether 0 or 999k parked tenants are
  // registered beside it (the requests_completed gate enforces this).
  for (TenantId t = 1; t <= registered; t++) {
    (void)sim.AddTenant(ScaleTenant(t), pool);
    const bool is_active = t <= active;
    sim::WorkloadProfile profile;
    profile.base_qps = is_active ? 500 : 0;  // 0 => parked after tick 1.
    profile.read_ratio = 0.8;
    profile.num_keys = 512;
    profile.value_bytes = 128;
    sim.SetWorkload(t, profile);
    if (is_active) {
      sim.PreloadKeys(t, /*num_keys=*/512, /*value_bytes=*/128);
    }
  }
  auto setup_end = std::chrono::steady_clock::now();

  // The first ticks park every flat-zero generator and drain the
  // replication walk to its quiescent set — that registration-size cost
  // is warm-up, not steady state.
  sim.RunTicks(warmup_ticks);

  // One simulation, median of N timed windows: rebuilding a
  // million-tenant cluster per repetition would dominate the bench.
  std::vector<double> tps_samples;
  for (size_t w = 0; w < windows; w++) {
    auto start = std::chrono::steady_clock::now();
    sim.RunTicks(timed_ticks);
    auto end = std::chrono::steady_clock::now();
    double seconds = std::chrono::duration<double>(end - start).count();
    tps_samples.push_back(
        seconds > 0 ? static_cast<double>(timed_ticks) / seconds : 0);
  }

  RunResult r;
  r.nodes = num_nodes;
  r.registered = registered;
  r.active = active;
  r.ticks_per_sec = Median(tps_samples);
  r.setup_seconds =
      std::chrono::duration<double>(setup_end - setup_start).count();
  r.active_generators = sim.ActiveGeneratorCount();
  r.repl_active = sim.ReplActiveCount();
  r.pending_wakes = sim.PendingGeneratorWakes();
  for (TenantId t = 1; t <= active; t++) {
    const auto& h = sim.History(t);
    for (size_t i = warmup_ticks; i < h.size(); i++) {
      r.requests_completed += h[i].ok;
    }
  }
  return r;
}

}  // namespace
}  // namespace bench
}  // namespace abase

int main() {
  using abase::bench::RunOnce;
  using abase::bench::RunResult;

  const unsigned hw = std::thread::hardware_concurrency();
  // ABASE_BENCH_DENSE=1 re-runs on the legacy dense per-tenant tick —
  // the "before" column of the README scaling table. Dense mode is the
  // baseline being measured against, so it skips the sparse-ticking
  // gate (and its JSON should not be committed as the trend record).
  const char* dense_env = std::getenv("ABASE_BENCH_DENSE");
  const bool dense = dense_env != nullptr && dense_env[0] == '1';
  abase::bench::PrintHeader(
      "Tenant scaling: ticks/sec vs registered tenants at fixed active "
      "work (" +
      std::string(dense ? "DENSE legacy tick" : "sparse active-set tick") +
      ", hardware threads: " + std::to_string(hw) + ")");

  constexpr size_t kNodes = 1000;
  constexpr size_t kActive = 1000;
  constexpr size_t kWarmup = 3;
  constexpr size_t kTimed = 8;
  constexpr size_t kWindows = 3;  ///< Median-of-N timed windows.
  const std::vector<size_t> registered_counts = {1000, 1000000};

  std::printf("%12s %8s %8s %12s %12s %10s %10s\n", "registered", "active",
              "nodes", "ticks/sec", "reqs_ok", "gen_live", "setup_s");
  std::vector<RunResult> results;
  for (size_t registered : registered_counts) {
    RunResult r = RunOnce(kNodes, registered, kActive, kWarmup, kTimed,
                          kWindows, dense);
    std::printf("%12zu %8zu %8zu %12.2f %12llu %10zu %9.1fs\n", r.registered,
                r.active, r.nodes, r.ticks_per_sec,
                static_cast<unsigned long long>(r.requests_completed),
                r.active_generators, r.setup_seconds);
    results.push_back(r);
  }

  const RunResult& small = results[0];
  const RunResult& big = results[1];
  const double ratio =
      small.ticks_per_sec > 0 ? big.ticks_per_sec / small.ticks_per_sec : 0;
  std::printf(
      "\n1M-registered run sustains %.2fx the 1k-run tick rate "
      "(%zu live generators, %zu repl-active, %zu pending wakes)\n",
      ratio, big.active_generators, big.repl_active, big.pending_wakes);

  // Machine-readable trend record, written at the repo root (committed
  // per PR so the perf trajectory has data points). hardware_threads
  // lets consumers self-disable parallel expectations on small
  // containers; the sparse-ticking gate below is single-worker and
  // applies everywhere.
  const std::string json_path = abase::bench::RepoRootPath(
      dense ? "BENCH_scale_tenants_dense.json" : "BENCH_scale_tenants.json");
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\"bench\":\"scale_tenants\",\"dense_tick\":%s,"
                 "\"hardware_threads\":%u,"
                 "\"warmup_ticks\":%zu,\"timed_ticks\":%zu,"
                 "\"windows\":%zu,\"big_vs_small_tps_ratio\":%.3f,"
                 "\"results\":[",
                 dense ? "true" : "false", hw, kWarmup, kTimed, kWindows,
                 ratio);
    for (size_t i = 0; i < results.size(); i++) {
      const RunResult& r = results[i];
      std::fprintf(
          f,
          "%s{\"registered\":%zu,\"active\":%zu,\"nodes\":%zu,"
          "\"ticks_per_sec\":%.3f,\"requests_ok\":%llu,"
          "\"active_generators\":%zu,\"repl_active\":%zu,"
          "\"pending_wakes\":%zu,\"setup_seconds\":%.3f}",
          i == 0 ? "" : ",", r.registered, r.active, r.nodes, r.ticks_per_sec,
          static_cast<unsigned long long>(r.requests_completed),
          r.active_generators, r.repl_active, r.pending_wakes,
          r.setup_seconds);
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  // Exit-code gates. (1) Sanity: both runs completed the same live work
  // — a parked tenant must contribute zero requests and an active one
  // must not be starved by its million idle neighbors. (2) The headline
  // sparse-ticking gate: registering 999k parked tenants may cost at
  // most 2x in steady-state tick rate (the legacy dense tick measures
  // 0.25x here and fails).
  int rc = 0;
  if (big.requests_completed != small.requests_completed) {
    std::printf("FAIL: live work diverged (1k run %llu ok, 1M run %llu ok)\n",
                static_cast<unsigned long long>(small.requests_completed),
                static_cast<unsigned long long>(big.requests_completed));
    rc = 1;
  }
  if (!dense && ratio < 0.5) {
    std::printf(
        "FAIL: 1M-registered tick rate %.2f is %.2fx the 1k-run rate %.2f "
        "(gate: >= 0.5x)\n",
        big.ticks_per_sec, ratio, small.ticks_per_sec);
    rc = 1;
  }
  return rc;
}
