// Figure 9 reproduction: offline rescheduling of a 1000-DataNode
// resource pool.
//
// The pool starts with highly dispersed per-node RU and storage
// utilization (replicas placed with deliberate skew and diverse
// RU:storage profiles, mirroring Figure 3's tenant diversity). Running
// Algorithm 2 to convergence should concentrate the per-node utilization
// scatter around the pool optimum. The paper reports a 74.5% reduction
// in the stddev of RU usage and an 84.8% reduction in storage usage
// variance.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "resched/rescheduler.h"

using namespace abase;

namespace {

/// Prints a coarse 10-bucket histogram of per-node utilization.
void PrintUtilizationHistogram(const resched::PoolModel& pool,
                               resched::Resource r, const char* label) {
  int buckets[10] = {0};
  for (const auto& n : pool.nodes()) {
    double u = n.Utilization(r);
    int b = std::min(9, static_cast<int>(u * 10));
    buckets[std::max(0, b)]++;
  }
  std::printf("  %s utilization histogram (nodes per 10%% bucket):\n    ",
              label);
  for (int b = 0; b < 10; b++) std::printf("%5d", buckets[b]);
  std::printf("\n");
}

}  // namespace

int main() {
  bench::PrintHeader("Figure 9: offline rescheduling, 1000 DataNodes");

  const int kNodes = 1000;
  const int kReplicas = 6000;
  const int kTenants = 120;

  resched::PoolModel pool;
  for (NodeId i = 0; i < kNodes; i++) {
    pool.AddNode(i, /*ru_capacity=*/10000, /*storage_capacity=*/4e9);
  }

  // Diverse tenants: some RU-heavy (search/e-commerce), some
  // storage-heavy (direct messages), some balanced — placed skewed: each
  // tenant's replicas clump onto a contiguous slice of nodes, producing
  // the dispersed "before" picture of Figure 9a.
  Rng rng(2025);
  uint32_t partition = 0;
  for (int t = 0; t < kTenants; t++) {
    double ru_scale, sto_scale;
    double style = rng.NextDouble();
    if (style < 0.33) {  // RU-heavy.
      ru_scale = rng.NextLogNormal(std::log(900), 0.5);
      sto_scale = rng.NextLogNormal(std::log(4e7), 0.6);
    } else if (style < 0.66) {  // Storage-heavy.
      ru_scale = rng.NextLogNormal(std::log(120), 0.5);
      sto_scale = rng.NextLogNormal(std::log(4e8), 0.5);
    } else {  // Balanced.
      ru_scale = rng.NextLogNormal(std::log(400), 0.5);
      sto_scale = rng.NextLogNormal(std::log(1.5e8), 0.5);
    }
    int replicas = kReplicas / kTenants;
    NodeId base = static_cast<NodeId>(rng.NextUint64(kNodes));
    for (int r = 0; r < replicas; r++) {
      resched::ReplicaLoad load;
      load.tenant = static_cast<TenantId>(t + 1);
      load.partition = partition++;
      load.replica_index = 0;
      // Hour-of-day shaped RU load (diurnal peaks at tenant-specific
      // hours) so the 24-slot max aggregation matters.
      int peak_hour = static_cast<int>(rng.NextUint64(24));
      for (int h = 0; h < 24; h++) {
        double phase =
            std::cos(2.0 * M_PI * (h - peak_hour) / 24.0) * 0.4 + 0.6;
        load.ru.v[h] = ru_scale * phase;
      }
      load.storage = LoadVector::Constant(sto_scale);
      // Skewed placement: clumped within a 40-node window.
      NodeId target =
          (base + static_cast<NodeId>(rng.NextUint64(40))) % kNodes;
      pool.nodes()[target].AddReplica(std::move(load));
    }
  }

  double ru_stddev_before =
      pool.UtilizationStddev(resched::Resource::kRu);
  double sto_stddev_before =
      pool.UtilizationStddev(resched::Resource::kStorage);
  std::printf("\nBefore rescheduling (Figure 9a):\n");
  std::printf("  RU util: mean=%.3f stddev=%.4f max=%.3f\n",
              pool.MeanUtilization(resched::Resource::kRu), ru_stddev_before,
              pool.MaxUtilization(resched::Resource::kRu));
  std::printf("  Storage util: mean=%.3f stddev=%.4f max=%.3f\n",
              pool.MeanUtilization(resched::Resource::kStorage),
              sto_stddev_before,
              pool.MaxUtilization(resched::Resource::kStorage));
  PrintUtilizationHistogram(pool, resched::Resource::kRu, "RU");
  PrintUtilizationHistogram(pool, resched::Resource::kStorage, "Storage");

  resched::ReschedOptions opts;
  opts.theta = 0.05;
  resched::IntraPoolRescheduler rescheduler(opts);
  auto moves = rescheduler.RunToConvergence(&pool, /*max_rounds=*/120);

  double ru_stddev_after = pool.UtilizationStddev(resched::Resource::kRu);
  double sto_stddev_after =
      pool.UtilizationStddev(resched::Resource::kStorage);
  std::printf("\nAfter rescheduling (Figure 9b): %zu migrations\n",
              moves.size());
  std::printf("  RU util: mean=%.3f stddev=%.4f max=%.3f\n",
              pool.MeanUtilization(resched::Resource::kRu), ru_stddev_after,
              pool.MaxUtilization(resched::Resource::kRu));
  std::printf("  Storage util: mean=%.3f stddev=%.4f max=%.3f\n",
              pool.MeanUtilization(resched::Resource::kStorage),
              sto_stddev_after,
              pool.MaxUtilization(resched::Resource::kStorage));
  PrintUtilizationHistogram(pool, resched::Resource::kRu, "RU");
  PrintUtilizationHistogram(pool, resched::Resource::kStorage, "Storage");

  double ru_reduction =
      100.0 * (1.0 - ru_stddev_after / ru_stddev_before);
  double sto_var_reduction =
      100.0 * (1.0 - (sto_stddev_after * sto_stddev_after) /
                         (sto_stddev_before * sto_stddev_before));
  std::printf(
      "\n -> RU usage stddev reduction: %.1f%% (paper: 74.5%%)\n"
      " -> Storage usage variance reduction: %.1f%% (paper: 84.8%%)\n",
      ru_reduction, sto_var_reduction);
  return 0;
}
