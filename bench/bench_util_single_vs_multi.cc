// Section 6.4 reproduction: machine utilization, single-tenant ABase-Pre
// vs multi-tenant ABase.
//
// The paper reports average machine utilization rising from CPU 17% /
// Mem 52% / Disk 27% (single-tenant) to CPU 44% / 63% / 46%
// (multi-tenant). Two effects drive this:
//  1. single-tenant machines are sized for each tenant's peak and cannot
//     share slack; multi-tenant pooling packs diverse tenants together;
//  2. single-tenant deployments must cap utilization at 2/3 to absorb a
//     3/2 load spike when one of three replicas fails, while N-node
//     pools only take a 1/N spike (Section 3.3).
//
// The harness packs a diverse tenant population both ways and reports
// average per-machine utilization for CPU(RU), memory(cache), and disk.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"

using namespace abase;

namespace {

struct TenantDemand {
  double cpu_peak;   // RU/s at peak.
  double cpu_mean;   // RU/s average over the day.
  double mem_bytes;  // Working set (cache) demand.
  double disk_bytes; // Storage footprint.
};

struct MachineSpec {
  double cpu = 10000;        // RU/s.
  double mem = 8e9;          // Bytes.
  double disk = 4e12;        // Bytes.
};

}  // namespace

int main() {
  bench::PrintHeader(
      "Section 6.4: utilization, single-tenant vs multi-tenant");

  Rng rng(7);
  const int kTenants = 200;
  std::vector<TenantDemand> tenants;
  for (int i = 0; i < kTenants; i++) {
    TenantDemand d;
    double style = rng.NextDouble();
    // Diverse RU:storage profiles (Table 1): throughput-heavy,
    // storage-heavy, or balanced; peak-to-mean ~2-4x.
    if (style < 0.35) {  // Throughput-heavy serving tenants.
      d.cpu_peak = rng.NextLogNormal(std::log(22000), 0.5);
      d.disk_bytes = rng.NextLogNormal(std::log(1.2e12), 0.6);
    } else if (style < 0.7) {  // Storage-heavy pipelines.
      d.cpu_peak = rng.NextLogNormal(std::log(3500), 0.5);
      d.disk_bytes = rng.NextLogNormal(std::log(8e12), 0.5);
    } else {  // Balanced.
      d.cpu_peak = rng.NextLogNormal(std::log(9000), 0.4);
      d.disk_bytes = rng.NextLogNormal(std::log(3.5e12), 0.5);
    }
    d.cpu_mean = d.cpu_peak / (2.0 + 2.0 * rng.NextDouble());
    d.mem_bytes = rng.NextLogNormal(std::log(6e9), 0.5);
    tenants.push_back(d);
  }

  MachineSpec machine;

  // ---- Single-tenant (ABase-Pre): each tenant gets dedicated machines
  // sized for its peak, AND utilization must stay below 2/3 so the
  // remaining replicas absorb a one-of-three node failure.
  const double kSingleTenantCap = 2.0 / 3.0;
  double st_machines = 0, st_cpu_used = 0, st_mem_used = 0, st_disk_used = 0;
  for (const auto& t : tenants) {
    double need = std::max({t.cpu_peak / (machine.cpu * kSingleTenantCap),
                            t.mem_bytes / (machine.mem * kSingleTenantCap),
                            t.disk_bytes / (machine.disk * kSingleTenantCap)});
    double machines = std::max(3.0, std::ceil(need));  // >= 3 replicas.
    st_machines += machines;
    st_cpu_used += t.cpu_mean;
    st_mem_used += t.mem_bytes;
    st_disk_used += t.disk_bytes;
  }
  double st_cpu = st_cpu_used / (st_machines * machine.cpu) * 100;
  double st_mem = st_mem_used / (st_machines * machine.mem) * 100;
  double st_disk = st_disk_used / (st_machines * machine.disk) * 100;

  // ---- Multi-tenant (ABase): one shared pool. Peaks are not aligned
  // (diverse diurnal phases), so pool capacity is sized for the sum of
  // means plus headroom: 20% idle reserve + 1/N failure spike (N-node
  // redundancy instead of the 3/2 single-tenant spike).
  double mt_cpu_mean = 0, mt_mem = 0, mt_disk = 0, mt_cpu_peak_sum = 0;
  for (const auto& t : tenants) {
    mt_cpu_mean += t.cpu_mean;
    mt_cpu_peak_sum += t.cpu_peak;
    mt_mem += t.mem_bytes;
    mt_disk += t.disk_bytes;
  }
  // Statistical multiplexing: the pool's aggregate peak is far below the
  // sum of individual peaks; with independent peak hours the aggregate
  // peak ~ mean + (peak-mean)/sqrt(#tenants-ish). Use a measured-style
  // factor: aggregate peak = mean * 1.35.
  double pool_peak = mt_cpu_mean * 1.35;
  const double kIdleReserve = 1.25;  // Lessons: >= 20% idle resources.
  double mt_machines = std::max(
      {std::ceil(pool_peak * kIdleReserve / machine.cpu),
       std::ceil(mt_mem * kIdleReserve / machine.mem),
       std::ceil(mt_disk * kIdleReserve / machine.disk)});
  double mt_cpu = mt_cpu_mean / (mt_machines * machine.cpu) * 100;
  double mt_mem_pct = mt_mem / (mt_machines * machine.mem) * 100;
  double mt_disk_pct = mt_disk / (mt_machines * machine.disk) * 100;

  std::printf("\n%-28s %10s %10s %10s %12s\n", "Deployment", "CPU", "Memory",
              "Disk", "machines");
  std::printf("%-28s %9.0f%% %9.0f%% %9.0f%% %12.0f\n",
              "Single-tenant (ABase-Pre)", st_cpu, st_mem, st_disk,
              st_machines);
  std::printf("%-28s %9.0f%% %9.0f%% %9.0f%% %12.0f\n",
              "Multi-tenant (ABase)", mt_cpu, mt_mem_pct, mt_disk_pct,
              mt_machines);
  std::printf("%-28s %9s %9s %9s\n", "Paper: single-tenant", "17%", "52%",
              "27%");
  std::printf("%-28s %9s %9s %9s\n", "Paper: multi-tenant", "44%", "63%",
              "46%");
  std::printf(
      "\nShape check: multi-tenant pooling should roughly double CPU and "
      "disk utilization while memory improves moderately, with far fewer "
      "machines.\n");
  return 0;
}
