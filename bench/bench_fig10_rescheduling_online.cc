// Figure 10 reproduction: online rescheduling convergence.
//
// A live pool runs with skewed tenant load. Rescheduling starts partway
// through the run and executes every "10 minutes" (every 10 simulated
// ticks here). The paper's figure shows the maximum per-node QPS
// converging toward the pool average once rescheduling starts.
#include <cstdio>

#include "bench/bench_util.h"
#include "resched/rescheduler.h"
#include "sim/cluster_sim.h"

using namespace abase;

int main() {
  bench::PrintHeader("Figure 10: online rescheduling convergence");

  sim::SimOptions opts;
  opts.seed = 33;
  opts.node.wfq.cpu_budget_ru = 100000;
  opts.node.disk.read_iops_capacity = 2e6;
  sim::ClusterSim cluster(opts);
  PoolId pool = cluster.AddPool(10);

  // Several tenants with very different intensities; placement balance
  // by count does not imply load balance, so per-node RU disperses.
  struct TenantSpec {
    double qps;
    double read_ratio;
    double theta;
  };
  std::vector<TenantSpec> specs = {
      {4000, 0.4, 0.95}, {800, 0.9, 0.8},  {2500, 0.2, 0.9},
      {300, 0.95, 0.7},  {1500, 0.5, 0.99}, {600, 0.8, 0.85},
  };
  for (size_t i = 0; i < specs.size(); i++) {
    meta::TenantConfig cfg;
    cfg.id = static_cast<TenantId>(i + 1);
    cfg.name = "tenant" + std::to_string(i + 1);
    cfg.tenant_quota_ru = 2e5;
    cfg.num_partitions = 5;
    cfg.num_proxies = 4;
    cfg.num_proxy_groups = 2;
    (void)cluster.AddTenant(cfg, pool);
    sim::WorkloadProfile p;
    p.base_qps = specs[i].qps;
    p.read_ratio = specs[i].read_ratio;
    p.zipf_theta = specs[i].theta;  // Skew => partitions load unevenly.
    p.num_keys = 5000;
    p.value_bytes = 1024;
    cluster.SetWorkload(cfg.id, p);
  }

  resched::IntraPoolRescheduler rescheduler;

  const size_t kTotalTicks = 300;
  const size_t kStartResched = 100;  // Rescheduling deploys here.
  const size_t kReschedEvery = 10;   // "Every 10 minutes".

  std::printf("%6s %14s %14s %10s %s\n", "tick", "maxNodeRU/s", "avgNodeRU/s",
              "max/avg", "event");
  size_t migrations_total = 0;
  for (size_t tick = 0; tick < kTotalTicks; tick++) {
    cluster.Tick();

    const char* event = "";
    if (tick >= kStartResched && (tick - kStartResched) % kReschedEvery == 0) {
      resched::PoolModel model = cluster.BuildPoolModel(pool);
      auto moves = rescheduler.Run(&model);
      size_t applied = 0;
      for (const auto& outcome : cluster.ApplyMigrations(moves)) {
        if (outcome.status.ok()) applied++;
      }
      migrations_total += applied;
      if (tick == kStartResched) event = "<- rescheduling starts";
      else if (applied > 0) event = "(migrated)";
    }

    if (tick % 20 == 19 || tick == kStartResched) {
      double max_ru = 0, sum_ru = 0;
      for (const auto& n : cluster.nodes()) {
        double ru = 0;
        for (const auto& [tid, r] : n->LastTickTenantRu()) ru += r;
        max_ru = std::max(max_ru, ru);
        sum_ru += ru;
      }
      double avg_ru = sum_ru / static_cast<double>(cluster.nodes().size());
      std::printf("%6zu %14.0f %14.0f %10.2f %s\n", tick, max_ru, avg_ru,
                  avg_ru > 0 ? max_ru / avg_ru : 0, event);
    }
  }

  // Shape check: max/avg ratio tightens after rescheduling starts.
  auto ratio_at = [&](size_t from, size_t to) {
    double worst = 0;
    // Re-measure with a short window by re-running? Instead use final vs
    // initial stored pool models: simplest is comparing utilization
    // dispersion of the current topology.
    (void)from;
    (void)to;
    resched::PoolModel model = cluster.BuildPoolModel(pool);
    double max_u = model.MaxUtilization(resched::Resource::kRu);
    double mean_u = model.MeanUtilization(resched::Resource::kRu);
    worst = mean_u > 0 ? max_u / mean_u : 0;
    return worst;
  };
  std::printf(
      "\n -> total migrations applied: %zu; final max/avg node RU ratio: "
      "%.2f (paper: max converges toward average after rescheduling "
      "starts)\n",
      migrations_total, ratio_at(0, 0));
  return 0;
}
